package trajindex

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/mapgen"
	"repro/internal/mobisim"
	"repro/internal/traj"
)

func lineTraj(id traj.ID, y float64, t0 float64) traj.Trajectory {
	tr := traj.Trajectory{ID: id}
	for i := 0; i <= 10; i++ {
		tr.Points = append(tr.Points, traj.Sample(0, geo.Pt(float64(i)*100, y), t0+float64(i)*10))
	}
	return tr
}

func TestQueryBasic(t *testing.T) {
	ds := traj.Dataset{Trajectories: []traj.Trajectory{
		lineTraj(1, 0, 0),    // crosses x in [0,1000] at y=0, t in [0,100]
		lineTraj(2, 500, 0),  // y=500
		lineTraj(3, 0, 1000), // same path as 1, much later
	}}
	idx, err := New(ds, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Box around the middle of the y=0 line, full time span of traj 1.
	box := geo.RectFromPoints(geo.Pt(400, -50), geo.Pt(600, 50))
	got := idx.Query(box, 0, 200)
	if !reflect.DeepEqual(got, []traj.ID{1}) {
		t.Errorf("Query = %v, want [1]", got)
	}
	// Later window catches trajectory 3 only.
	got = idx.Query(box, 900, 2000)
	if !reflect.DeepEqual(got, []traj.ID{3}) {
		t.Errorf("late Query = %v, want [3]", got)
	}
	// Wide box and time: everything.
	got = idx.Query(geo.RectFromPoints(geo.Pt(-10, -10), geo.Pt(2000, 600)), 0, 3000)
	if !reflect.DeepEqual(got, []traj.ID{1, 2, 3}) {
		t.Errorf("wide Query = %v", got)
	}
	// Empty results: wrong place, wrong time.
	if got := idx.Query(geo.RectFromPoints(geo.Pt(5000, 5000), geo.Pt(6000, 6000)), 0, 100); len(got) != 0 {
		t.Errorf("far Query = %v", got)
	}
	if got := idx.Query(box, 300, 800); len(got) != 0 {
		t.Errorf("gap-time Query = %v", got)
	}
	// Degenerate inputs.
	if got := idx.Query(geo.EmptyRect(), 0, 100); got != nil {
		t.Errorf("empty box Query = %v", got)
	}
	if got := idx.Query(box, 100, 0); got != nil {
		t.Errorf("inverted time Query = %v", got)
	}
}

func TestQueryAgainstBruteForce(t *testing.T) {
	g, err := mapgen.Generate(mapgen.Config{
		Name: "ti", TargetJunctions: 200, TargetSegments: 280,
		AvgSegLenM: 150, MaxDegree: 6, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, _, err := mobisim.New(g).Simulate(mobisim.DefaultConfig("ti", 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := New(ds, 200)
	if err != nil {
		t.Fatal(err)
	}
	bounds := g.Bounds()
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 60; trial++ {
		cx := bounds.Min.X + rng.Float64()*bounds.Width()
		cy := bounds.Min.Y + rng.Float64()*bounds.Height()
		half := 100 + rng.Float64()*600
		box := geo.RectFromPoints(geo.Pt(cx-half, cy-half), geo.Pt(cx+half, cy+half))
		t0 := rng.Float64() * 600
		t1 := t0 + rng.Float64()*1200

		got := idx.Query(box, t0, t1)
		var want []traj.ID
		for _, tr := range ds.Trajectories {
			for _, p := range tr.Points {
				if p.Time >= t0 && p.Time <= t1 && box.Contains(p.Pt) {
					want = append(want, tr.ID)
					break
				}
			}
		}
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("trial %d: Query = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestSubset(t *testing.T) {
	ds := traj.Dataset{Trajectories: []traj.Trajectory{
		lineTraj(1, 0, 0), lineTraj(2, 100, 0), lineTraj(3, 200, 0),
	}}
	idx, err := New(ds, 100)
	if err != nil {
		t.Fatal(err)
	}
	sub := idx.Subset([]traj.ID{3, 1, 99}, "sub")
	if len(sub.Trajectories) != 2 {
		t.Fatalf("subset = %d trajectories", len(sub.Trajectories))
	}
	if sub.Trajectories[0].ID != 3 || sub.Trajectories[1].ID != 1 {
		t.Errorf("subset order = %v, %v (follows requested ids)", sub.Trajectories[0].ID, sub.Trajectories[1].ID)
	}
}

func TestStatsAndValidation(t *testing.T) {
	ds := traj.Dataset{Trajectories: []traj.Trajectory{lineTraj(1, 0, 5)}}
	idx, err := New(ds, 100)
	if err != nil {
		t.Fatal(err)
	}
	s := idx.Stats()
	if s.Trajectories != 1 || s.Visits == 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.TimeSpan != [2]float64{5, 105} {
		t.Errorf("time span = %v", s.TimeSpan)
	}
	if _, err := New(ds, 0); err == nil {
		t.Error("zero cell size accepted")
	}
	if _, err := New(traj.Dataset{}, 100); err == nil {
		t.Error("empty dataset accepted")
	}
	dup := traj.Dataset{Trajectories: []traj.Trajectory{lineTraj(1, 0, 0), lineTraj(1, 0, 0)}}
	if _, err := New(dup, 100); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestVisitCompression(t *testing.T) {
	// A trajectory staying in one cell produces one visit, not one per
	// sample.
	tr := traj.Trajectory{ID: 1}
	for i := 0; i < 20; i++ {
		tr.Points = append(tr.Points, traj.Sample(0, geo.Pt(10+float64(i), 10), float64(i)))
	}
	idx, err := New(traj.Dataset{Trajectories: []traj.Trajectory{tr}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s := idx.Stats(); s.Visits != 1 {
		t.Errorf("visits = %d, want 1 (interval compression)", s.Visits)
	}
}
