package experiments

import (
	"repro/internal/neat"
	"repro/internal/toptics"
	"repro/internal/traclus"
)

// Baselines compares the three clustering families on one dataset:
// NEAT (this paper), TraClus (partial trajectories, Euclidean — the
// paper's §IV baseline), and Trajectory-OPTICS (whole trajectories,
// time-averaged Euclidean — related work [24]). The contrast shows why
// the paper dismisses whole-trajectory clustering: it cannot surface
// shared sub-routes and its output says nothing about the network.
func Baselines(e *Env) (*Table, error) {
	t := &Table{
		ID:     "baselines",
		Title:  "Three clustering families on ATL500 (NEAT vs TraClus [13] vs T-OPTICS [24])",
		Header: []string{"System", "Unit", "Clusters", "Noise", "Seconds", "DistanceCalls"},
		Notes: []string{
			"T-OPTICS clusters whole trajectories: co-travelling trips group, shared sub-routes are invisible",
			"TraClus finds dense sub-trajectory regions but no route continuity; NEAT needs no distance calls before Phase 3",
		},
	}
	g, err := e.Graph("ATL")
	if err != nil {
		return nil, err
	}
	ds, err := e.Dataset("ATL", 500)
	if err != nil {
		return nil, err
	}

	start := nowSeconds()
	nres, err := neat.NewPipeline(g).Run(ds, e.NEATConfig(), neat.LevelOpt)
	if err != nil {
		return nil, err
	}
	t.AddRow("opt-NEAT", "t-fragment", len(nres.Clusters), 0, nowSeconds()-start, nres.RefineStats.SPQueries)

	tres, err := traclus.Run(ds, traclus.Config{Epsilon: 10, MinLns: e.traclusMinLns(30)})
	if err != nil {
		return nil, err
	}
	t.AddRow("TraClus", "line segment", len(tres.Clusters), tres.NoiseSegments,
		tres.Timing.Total().Seconds(), tres.DistanceCalls)

	ores, err := toptics.Run(ds, toptics.Config{Epsilon: e.Epsilon(800), MinPts: 3})
	if err != nil {
		return nil, err
	}
	t.AddRow("T-OPTICS", "trajectory", ores.NumClusters, ores.Noise,
		ores.Elapsed.Seconds(), ores.DistanceCalls)
	return t, nil
}
