package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/persist"
	"repro/internal/roadnet"
	"repro/internal/stream"
	"repro/internal/traj"
)

// RecoveryRow is one row of the recovery artifact: the durable
// streaming clusterer crashed after a seeded history and restarted,
// with one window size, timed against the cheapest possible cold
// start (re-ingesting only the trailing window from raw batches).
type RecoveryRow struct {
	Window      int `json:"window"`
	SeedIngests int `json:"seed_ingests"`
	// WALBytes and CheckpointBytes describe the on-disk state the
	// recovered start paid to read.
	WALBytes        int64 `json:"wal_bytes"`
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	ReplayedRecords int   `json:"replayed_records"`
	// OpenMs is checkpoint load + WAL replay alone; RecoveredMs adds
	// the first new ingest on top (time-to-first-ingest after a crash).
	OpenMs      float64 `json:"open_ms"`
	RecoveredMs float64 `json:"recovered_ms"`
	// ColdMs is time-to-first-ingest for a process with no durable
	// state: re-cluster the trailing window batches from the raw
	// archive, then the same new ingest.
	ColdMs float64 `json:"cold_ms"`
	// Speedup is ColdMs / RecoveredMs.
	Speedup float64 `json:"speedup"`
}

// RecoveryReport is the JSON document neatbench -recoveryjson emits:
// the fixed crash-recovery scenario across window sizes, comparing a
// durable restart (checkpoint + WAL replay through Phases 1-3)
// against a best-case cold start. CI uploads it as
// BENCH_recovery.json.
type RecoveryReport struct {
	Scale        float64       `json:"scale"`
	Region       string        `json:"region"`
	Trajectories int           `json:"trajectories"`
	Batches      int           `json:"batches"`
	Rows         []RecoveryRow `json:"rows"`
}

// Recovery runs the fixed crash-recovery scenario for each window
// size and collects the report. The recovered and cold starts must
// agree on the shape of the first post-restart clustering — recovery
// is a durability mechanism, not a result knob, and timings of
// divergent runs would not be comparable.
func Recovery(e *Env) (*RecoveryReport, error) {
	const (
		totalBatches = 6
		seedIngests  = 16 // ingests before the simulated crash
		ckptEvery    = 3  // leaves a WAL tail to replay after the kill
	)
	g, err := e.Graph("ATL")
	if err != nil {
		return nil, err
	}
	ds, err := e.Dataset("ATL", 2000)
	if err != nil {
		return nil, err
	}
	bs := streamBatches(ds, totalBatches)
	rep := &RecoveryReport{
		Scale:        e.Scale(),
		Region:       "ATL",
		Trajectories: len(ds.Trajectories),
		Batches:      len(bs),
	}
	for _, window := range []int{2, 4, 8, 16} {
		row, err := recoveryWindow(e, g, bs, window, seedIngests, ckptEvery)
		if err != nil {
			return nil, fmt.Errorf("experiments: recovery window %d: %w", window, err)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// recoveryWindow runs one window size: seed a durable clusterer with
// seedIngests batches, kill it without flushing, then time the
// recovered restart against the cold one.
func recoveryWindow(e *Env, g *roadnet.Graph, bs []traj.Dataset, window, seedIngests, ckptEvery int) (RecoveryRow, error) {
	row := RecoveryRow{Window: window, SeedIngests: seedIngests}
	dir, err := os.MkdirTemp("", "neatbench-recovery-")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)

	durable := stream.Config{
		Neat:   e.NEATConfig(),
		Window: window,
		Persist: &persist.Options{
			Dir:             dir,
			Fsync:           persist.FsyncAlways,
			CheckpointEvery: ckptEvery,
		},
	}
	victim, err := stream.New(g, durable)
	if err != nil {
		return row, err
	}
	for i := 0; i < seedIngests; i++ {
		if _, err := victim.Ingest(bs[i%len(bs)]); err != nil {
			return row, fmt.Errorf("seed ingest %d: %w", i, err)
		}
	}
	victim.Abort() // kill -9: no flush, no final checkpoint

	// Recovered start: open the data directory (checkpoint load + WAL
	// replay through the normal ingest path), then the first new batch.
	next := bs[seedIngests%len(bs)]
	t0 := time.Now()
	recovered, err := stream.New(g, durable)
	if err != nil {
		return row, fmt.Errorf("reopen: %w", err)
	}
	row.OpenMs = ms(time.Since(t0))
	snap, err := recovered.Ingest(next)
	if err != nil {
		return row, fmt.Errorf("post-recovery ingest: %w", err)
	}
	row.RecoveredMs = ms(time.Since(t0))
	pst := recovered.PersistStats()
	row.WALBytes = pst.WALBytes
	row.CheckpointBytes = pst.Recovery.CheckpointBytes
	row.ReplayedRecords = pst.Recovery.Replayed
	recoveredClusters := len(snap.Clusters)
	if got := recovered.Batches(); got != seedIngests+1 {
		return row, fmt.Errorf("recovered %d batches, want %d", got-1, seedIngests)
	}
	if err := recovered.Close(); err != nil {
		return row, fmt.Errorf("close: %w", err)
	}

	// Cold start: no durable state, so re-cluster the trailing window
	// from the raw batch archive before the same new ingest. This is
	// the cheapest correct cold start (a real one would not know where
	// the window begins without the log), so the speedup is a floor.
	warm := window
	if warm > seedIngests {
		warm = seedIngests
	}
	coldCfg := stream.Config{Neat: e.NEATConfig(), Window: window}
	t0 = time.Now()
	cold, err := stream.New(g, coldCfg)
	if err != nil {
		return row, err
	}
	for i := seedIngests - warm; i < seedIngests; i++ {
		if _, err := cold.Ingest(bs[i%len(bs)]); err != nil {
			return row, fmt.Errorf("cold ingest %d: %w", i, err)
		}
	}
	snap, err = cold.Ingest(next)
	if err != nil {
		return row, fmt.Errorf("cold final ingest: %w", err)
	}
	row.ColdMs = ms(time.Since(t0))
	if len(snap.Clusters) != recoveredClusters {
		return row, fmt.Errorf("cold start diverges: %d clusters, recovered had %d",
			len(snap.Clusters), recoveredClusters)
	}
	if row.RecoveredMs > 0 {
		row.Speedup = row.ColdMs / row.RecoveredMs
	}
	return row, nil
}
