package experiments

import (
	"repro/internal/mobisim"
	"repro/internal/neat"
	"repro/internal/quality"
)

// Workloads tests NEAT's sensitivity to traffic structure by running
// the pipeline over three trip models on the ATL map: the paper's
// hotspot model, a uniform origin-destination model (diffuse traffic),
// and a commute model (one dominant stream). NEAT's premise — clusters
// describe *major traffic streams* — predicts many strong flows under
// commute, fewer under hotspot, and mostly filtered noise under
// uniform.
func Workloads(e *Env) (*Table, error) {
	t := &Table{
		ID:     "workloads",
		Title:  "NEAT under different traffic structures (ATL, 500-object scale)",
		Header: []string{"Model", "Trips", "Flows", "Filtered", "AvgRouteM", "TrajCov", "Consistency"},
		Notes: []string{
			"uniform traffic has no major streams: most base clusters fail minCard and coverage collapses — NEAT reports exactly that",
		},
	}
	g, err := e.Graph("ATL")
	if err != nil {
		return nil, err
	}
	sim := mobisim.New(g)
	p := neat.NewPipeline(g)
	cfg := e.NEATConfig()
	simCfg := e.simConfig("ATL", 500)
	for _, model := range []mobisim.TripModel{mobisim.TripHotspot, mobisim.TripUniform, mobisim.TripCommute} {
		ds, _, err := sim.SimulateModel(simCfg, model)
		if err != nil {
			return nil, err
		}
		res, err := p.Run(ds, cfg, neat.LevelFlow)
		if err != nil {
			return nil, err
		}
		m := quality.EvaluateNEAT(g, res, len(ds.Trajectories))
		t.AddRow(model.String(), len(ds.Trajectories), len(res.Flows), res.FilteredFlows,
			m.AvgRepLength, m.TrajectoryCoverage, m.FlowConsistency)
	}
	return t, nil
}
