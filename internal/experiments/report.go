package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a formatted experiment result: a titled grid of rows plus
// free-form notes (scale caveats, paper references).
type Table struct {
	ID     string // experiment id, e.g. "table1", "fig5d"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// WriteTo renders the table as aligned plain text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("== %s: %s ==\n", t.ID, t.Title))
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	sb.WriteString("\n")
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table for logs and tests.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return fmt.Sprintf("table %s: %v", t.ID, err)
	}
	return sb.String()
}

// WriteMarkdown renders the table as a GitHub-flavored Markdown
// section, for pasting into EXPERIMENTS-style documents.
func (t *Table) WriteMarkdown(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("## %s — %s\n\n", t.ID, t.Title))
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Header))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		sb.WriteString("\n")
		for _, n := range t.Notes {
			sb.WriteString("> " + n + "\n")
		}
	}
	sb.WriteString("\n")
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}
