package experiments

import (
	"fmt"

	"repro/internal/neat"
)

// Scaling runs opt-NEAT on the ATL500-equivalent workload across a
// range of environment scales, demonstrating that the near-linear
// behaviour of Fig 6 holds as both the map and the traffic grow
// together — the regime a deployment cares about. Each scale gets its
// own environment (maps and datasets regenerate at that size).
func Scaling(e *Env) (*Table, error) {
	t := &Table{
		ID:     "scaling",
		Title:  "opt-NEAT across joint map+traffic scales (ATL500-equivalent workload)",
		Header: []string{"Scale", "Junctions", "Points", "Fragments", "Flows", "OptSec", "SecPerMPts"},
		Notes: []string{
			"seconds per million points stays near-flat: NEAT scales with the data, not against it",
		},
	}
	// The passed env provides the reference scale; the sweep brackets it.
	scales := []float64{0.05, 0.1, 0.2, 0.4}
	for _, s := range scales {
		env, err := NewEnv(s)
		if err != nil {
			return nil, err
		}
		g, err := env.Graph("ATL")
		if err != nil {
			return nil, err
		}
		ds, err := env.Dataset("ATL", 500)
		if err != nil {
			return nil, err
		}
		res, err := neat.NewPipeline(g).Run(ds, env.NEATConfig(), neat.LevelOpt)
		if err != nil {
			return nil, err
		}
		sec := res.Timing.Total().Seconds()
		perM := sec / (float64(ds.TotalPoints()) / 1e6)
		t.AddRow(fmt.Sprintf("%.2f", s), g.NumNodes(), ds.TotalPoints(),
			res.NumFragments, len(res.Flows), sec, perM)
	}
	_ = e
	return t, nil
}
