package experiments

import (
	"fmt"

	"repro/internal/neat"
	"repro/internal/roadnet"
)

// paperTableI holds the published road-network statistics (Table I).
var paperTableI = map[string]roadnet.Stats{
	"ATL": {TotalLengthKm: 1384.4, NumSegments: 9187, AvgSegLenM: 150.7, NumJunctions: 6979, AvgDegree: 2.6, MaxDegree: 6},
	"SJ":  {TotalLengthKm: 1821.2, NumSegments: 14600, AvgSegLenM: 124.7, NumJunctions: 10929, AvgDegree: 2.7, MaxDegree: 6},
	"MIA": {TotalLengthKm: 26148.3, NumSegments: 154681, AvgSegLenM: 169.0, NumJunctions: 103377, AvgDegree: 3.0, MaxDegree: 9},
}

// paperTableII holds the published dataset point counts (Table II),
// keyed by region, indexed parallel to PaperObjectCounts.
var paperTableII = map[string][]int{
	"ATL": {114878, 233793, 468738, 669924, 1277521},
	"SJ":  {131982, 255162, 542598, 794638, 1296739},
	"MIA": {276711, 452224, 893412, 1302145, 2262313},
}

// paperTableIII holds the published flow counts of opt-NEAT on the SJ
// datasets (Table III).
var paperTableIII = []int{73, 156, 55, 52, 180}

// TableI regenerates Table I: the statistics of the (synthetic
// stand-in) road networks, against the published values.
func TableI(e *Env) (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "Road networks used in the experiments (paper Table I)",
		Header: []string{"Region", "TotalKm", "Segments", "AvgSegM", "Junctions", "AvgDeg", "MaxDeg", "PaperKm", "PaperSegs", "PaperAvgM", "PaperJuncs", "PaperDeg"},
		Notes: []string{
			fmt.Sprintf("maps generated synthetically at scale %.3g; scale-invariant columns (AvgSegM, AvgDeg, MaxDeg) are directly comparable", e.Scale()),
		},
	}
	for _, region := range Regions {
		g, err := e.Graph(region)
		if err != nil {
			return nil, err
		}
		s := roadnet.ComputeStats(g)
		p := paperTableI[region]
		t.AddRow(region, s.TotalLengthKm, s.NumSegments, s.AvgSegLenM, s.NumJunctions, s.AvgDegree, s.MaxDegree,
			p.TotalLengthKm, p.NumSegments, p.AvgSegLenM, p.NumJunctions,
			fmt.Sprintf("%.1f/%d", p.AvgDegree, p.MaxDegree))
	}
	return t, nil
}

// TableII regenerates Table II: the number of location points per
// dataset, against the published counts.
func TableII(e *Env) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Datasets used in the experiments (paper Table II)",
		Header: []string{"Dataset", "Objects", "Points", "PaperPoints", "PtsPerObject"},
		Notes: []string{
			fmt.Sprintf("object counts scaled by %.3g; points-per-object is the scale-invariant comparison", e.Scale()),
		},
	}
	for _, region := range Regions {
		for i, paperObjects := range PaperObjectCounts {
			ds, err := e.Dataset(region, paperObjects)
			if err != nil {
				return nil, err
			}
			perObj := float64(ds.TotalPoints()) / float64(len(ds.Trajectories))
			t.AddRow(ds.Name, len(ds.Trajectories), ds.TotalPoints(), paperTableII[region][i], perObj)
		}
	}
	return t, nil
}

// NEATConfig returns the paper's main NEAT configuration at the
// environment's scale: flow-factor merging, minCard 5, ε = 6500 m
// (linearly scaled), ELB + bounded expansion on.
func (e *Env) NEATConfig() neat.Config {
	return neat.Config{
		Flow: neat.FlowConfig{Weights: neat.WeightsFlowOnly, MinCard: 5},
		Refine: neat.RefineConfig{
			Epsilon: e.Epsilon(6500),
			UseELB:  true,
			Bounded: true,
		},
	}
}

// TableIII regenerates Table III: the number of flow clusters produced
// by opt-NEAT's Phase 2 on the SJ datasets.
func TableIII(e *Env) (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "Number of flow clusters produced by opt-NEAT (paper Table III, SJ datasets)",
		Header: []string{"Dataset", "Flows", "PaperFlows", "FilteredByMinCard"},
		Notes: []string{
			"the paper's point is the non-monotone relationship between dataset size and flow count, which drives Fig 7(b)",
		},
	}
	g, err := e.Graph("SJ")
	if err != nil {
		return nil, err
	}
	p := neat.NewPipeline(g)
	cfg := e.NEATConfig()
	for i, paperObjects := range PaperObjectCounts {
		ds, err := e.Dataset("SJ", paperObjects)
		if err != nil {
			return nil, err
		}
		res, err := p.Run(ds, cfg, neat.LevelFlow)
		if err != nil {
			return nil, err
		}
		t.AddRow(ds.Name, len(res.Flows), paperTableIII[i], res.FilteredFlows)
	}
	return t, nil
}
