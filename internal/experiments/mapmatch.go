package experiments

import (
	"repro/internal/mapmatch"
	"repro/internal/mobisim"
)

// MapMatch validates the SLAMM-substitute preprocessing (§III-A1): it
// perturbs simulated traces with increasing GPS noise, matches them
// back onto the network, and reports segment-level accuracy. The paper
// relies on map matching being accurate enough that t-fragment
// extraction sees the true segment sequence; this experiment quantifies
// that assumption for the reimplementation.
func MapMatch(e *Env) (*Table, error) {
	t := &Table{
		ID:     "mapmatch",
		Title:  "Look-ahead map matching accuracy vs GPS noise (ATL, 100-object sample)",
		Header: []string{"NoiseStdDevM", "Traces", "Dropped", "SegmentAccuracy", "MeanSnapErrM"},
		Notes: []string{
			"segment accuracy = fraction of samples assigned their true sid; look-ahead resolves parallel-road ambiguity",
		},
	}
	g, err := e.Graph("ATL")
	if err != nil {
		return nil, err
	}
	sim := mobisim.New(g)
	cfg := e.simConfig("ATL", 100)
	ds, err := sim.SimulateWithLayout(cfg, mustLayout(e, "ATL"))
	if err != nil {
		return nil, err
	}
	for _, noise := range []float64{2, 5, 10, 20, 35} {
		m, err := mapmatch.New(g, mapmatch.Config{NoiseStdDev: noise})
		if err != nil {
			return nil, err
		}
		raws := mobisim.AddNoise(ds, noise, 77)
		matched, dropped := m.MatchAll(raws, "noisy")
		var correct, total int
		var snapErr float64
		for i, tr := range matched.Trajectories {
			truth := ds.Trajectories[i]
			if len(tr.Points) != len(truth.Points) {
				// Outlier-dropped samples break index alignment; skip
				// the trace for the accuracy numerator but count it.
				total += len(truth.Points)
				continue
			}
			for j, p := range tr.Points {
				total++
				if p.Seg == truth.Points[j].Seg {
					correct++
				}
				snapErr += p.Pt.Dist(truth.Points[j].Pt)
			}
		}
		acc := 0.0
		if total > 0 {
			acc = float64(correct) / float64(total)
		}
		mean := 0.0
		if correct > 0 {
			mean = snapErr / float64(total)
		}
		t.AddRow(noise, len(raws), dropped, acc, mean)
	}
	return t, nil
}

func mustLayout(e *Env, region string) mobisim.Layout {
	l, err := e.Layout(region)
	if err != nil {
		// Layout for a preset region only fails if the graph fails,
		// which earlier calls would have surfaced.
		panic(err)
	}
	return l
}
