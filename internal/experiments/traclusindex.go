package experiments

import (
	"fmt"

	"repro/internal/neat"
	"repro/internal/traclus"
)

// TraClusIndex steelmans the baseline: it reruns the Fig 5(d)
// comparison with TraClus' grouping phase accelerated by a sound
// spatial index, showing that the orders-of-magnitude gap to NEAT is
// architectural (distance-based grouping vs road-network flows), not
// an artifact of a naive O(n²) implementation.
func TraClusIndex(e *Env) (*Table, error) {
	t := &Table{
		ID:     "traclus-index",
		Title:  "Indexed TraClus vs NEAT on ATL datasets (baseline steelman)",
		Header: []string{"Dataset", "Points", "NEATSec", "TCBruteSec", "TCIndexSec", "IndexSpeedup", "NEATSpeedupVsIndexed"},
		Notes: []string{
			"the indexed variant produces identical clusters to brute force; NEAT still wins by orders of magnitude",
		},
	}
	g, err := e.Graph("ATL")
	if err != nil {
		return nil, err
	}
	p := neat.NewPipeline(g)
	neatCfg := e.NEATConfig()
	minLns := e.traclusMinLns(30)
	for _, paperObjects := range []int{500, 2000, 5000} {
		ds, err := e.Dataset("ATL", paperObjects)
		if err != nil {
			return nil, err
		}
		res, err := p.Run(ds, neatCfg, neat.LevelOpt)
		if err != nil {
			return nil, err
		}
		neatSec := res.Timing.Total().Seconds()

		brute, err := traclus.Run(ds, traclus.Config{Epsilon: 10, MinLns: minLns})
		if err != nil {
			return nil, err
		}
		indexed, err := traclus.Run(ds, traclus.Config{Epsilon: 10, MinLns: minLns, UseIndex: true})
		if err != nil {
			return nil, err
		}
		if len(brute.Clusters) != len(indexed.Clusters) {
			return nil, fmt.Errorf("experiments: indexed TraClus diverged (%d vs %d clusters)",
				len(indexed.Clusters), len(brute.Clusters))
		}
		bs := brute.Timing.Total().Seconds()
		is := indexed.Timing.Total().Seconds()
		t.AddRow(ds.Name, ds.TotalPoints(), neatSec, bs, is,
			fmt.Sprintf("%.1fx", bs/is), fmt.Sprintf("%.0fx", is/neatSec))
	}
	return t, nil
}
