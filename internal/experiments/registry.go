package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment. outDir receives auxiliary artifacts
// (SVGs); runners that produce none ignore it.
type Runner func(e *Env, outDir string) (*Table, error)

// Registry maps experiment ids to their runners, in the order of the
// paper's evaluation section.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1":           func(e *Env, _ string) (*Table, error) { return TableI(e) },
		"table2":           func(e *Env, _ string) (*Table, error) { return TableII(e) },
		"table3":           func(e *Env, _ string) (*Table, error) { return TableIII(e) },
		"fig3":             Fig3,
		"fig4":             Fig4,
		"fig5":             func(e *Env, _ string) (*Table, error) { return Fig5(e) },
		"fig6":             func(e *Env, _ string) (*Table, error) { return Fig6(e) },
		"fig7":             func(e *Env, _ string) (*Table, error) { return Fig7(e) },
		"variant":          func(e *Env, _ string) (*Table, error) { return Variant(e) },
		"accuracy":         func(e *Env, _ string) (*Table, error) { return Accuracy(e) },
		"baselines":        func(e *Env, _ string) (*Table, error) { return Baselines(e) },
		"workloads":        func(e *Env, _ string) (*Table, error) { return Workloads(e) },
		"mapmatch":         func(e *Env, _ string) (*Table, error) { return MapMatch(e) },
		"traclus-index":    func(e *Env, _ string) (*Table, error) { return TraClusIndex(e) },
		"scaling":          func(e *Env, _ string) (*Table, error) { return Scaling(e) },
		"ablation-weights": func(e *Env, _ string) (*Table, error) { return AblationWeights(e) },
		"ablation-beta":    func(e *Env, _ string) (*Table, error) { return AblationBeta(e) },
		"ablation-sp":      func(e *Env, _ string) (*Table, error) { return AblationSP(e) },
		"phase3-workers":   func(e *Env, _ string) (*Table, error) { return Phase3Workers(e) },
	}
}

// Order returns the canonical run order of all experiment ids.
func Order() []string {
	ids := make([]string, 0)
	for id := range Registry() {
		ids = append(ids, id)
	}
	rank := map[string]int{
		"table1": 0, "table2": 1, "fig3": 2, "fig4": 3, "fig5": 4,
		"fig6": 5, "table3": 6, "fig7": 7, "variant": 8, "accuracy": 9,
		"baselines": 10, "workloads": 11, "mapmatch": 12, "traclus-index": 13,
		"scaling":          14,
		"ablation-weights": 15, "ablation-beta": 16, "ablation-sp": 17,
		"phase3-workers": 18,
	}
	sort.Slice(ids, func(i, j int) bool { return rank[ids[i]] < rank[ids[j]] })
	return ids
}

// Run executes the experiment with the given id.
func Run(e *Env, id, outDir string) (*Table, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, Order())
	}
	return r(e, outDir)
}
