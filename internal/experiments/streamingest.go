package experiments

import (
	"fmt"
	"time"

	"repro/internal/stream"
	"repro/internal/traj"
)

// StreamIngestMode is one row of the stream-ingest artifact: the
// steady-state windowed clusterer run with one cache setting.
type StreamIngestMode struct {
	Config        string  `json:"config"` // "cached" or "uncached"
	CacheEntries  int     `json:"cache_entries"`
	WarmMs        float64 `json:"warm_ms"`
	SteadyIngests int     `json:"steady_ingests"`
	PerIngestMs   float64 `json:"per_ingest_ms"`
	SPQueries     int64   `json:"sp_queries"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	Clusters      int     `json:"clusters"` // after the final ingest
}

// StreamIngestReport is the JSON document neatbench -streamjson emits:
// the fixed streaming scenario ingested to a full window and then
// driven through steady-state batches twice — once with the persistent
// distance cache and incremental ε-graph (the default), once on the
// legacy from-scratch merge — with the per-ingest wall clock of each.
// CI uploads it as BENCH_stream_ingest.json and guards the speedup.
type StreamIngestReport struct {
	Scale        float64            `json:"scale"`
	Region       string             `json:"region"`
	Trajectories int                `json:"trajectories"`
	Batches      int                `json:"batches"`
	Window       int                `json:"window"`
	Modes        []StreamIngestMode `json:"modes"`
	// Speedup is uncached-per-ingest / cached-per-ingest.
	Speedup float64 `json:"speedup"`
}

// streamBatches splits a dataset into n near-equal consecutive batches.
func streamBatches(ds traj.Dataset, n int) []traj.Dataset {
	per := (len(ds.Trajectories) + n - 1) / n
	var out []traj.Dataset
	for lo := 0; lo < len(ds.Trajectories); lo += per {
		hi := lo + per
		if hi > len(ds.Trajectories) {
			hi = len(ds.Trajectories)
		}
		out = append(out, traj.Dataset{Name: ds.Name, Trajectories: ds.Trajectories[lo:hi]})
	}
	return out
}

// StreamIngest runs the fixed steady-state streaming scenario under
// both cache settings and collects the report. It fails if the two
// modes' clusterings ever diverge in shape — the cache and the
// incremental ε-graph are perf knobs, not result knobs, and timings of
// divergent runs would not be comparable.
func StreamIngest(e *Env) (*StreamIngestReport, error) {
	const (
		window       = 4
		totalBatches = 6
		steadyRounds = 8 // measured ingests after the warm window
	)
	g, err := e.Graph("ATL")
	if err != nil {
		return nil, err
	}
	ds, err := e.Dataset("ATL", 2000)
	if err != nil {
		return nil, err
	}
	bs := streamBatches(ds, totalBatches)
	rep := &StreamIngestReport{
		Scale:        e.Scale(),
		Region:       "ATL",
		Trajectories: len(ds.Trajectories),
		Batches:      len(bs),
		Window:       window,
	}
	modes := []struct {
		name    string
		entries int
	}{
		{"cached", 0},    // persistent cache + incremental ε-graph
		{"uncached", -1}, // legacy full merge, no cache
	}
	refClusters := make([]int, 0, window+steadyRounds)
	for mi, mode := range modes {
		cfg := stream.Config{Neat: e.NEATConfig(), Window: window, CacheEntries: mode.entries}
		c, err := stream.New(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: stream-ingest %s: %w", mode.name, err)
		}
		row := StreamIngestMode{Config: mode.name, CacheEntries: mode.entries}
		var steady time.Duration
		for i := 0; i < window+steadyRounds; i++ {
			start := time.Now()
			snap, err := c.Ingest(bs[i%len(bs)])
			took := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("experiments: stream-ingest %s ingest %d: %w", mode.name, i, err)
			}
			if i < window {
				row.WarmMs += ms(took)
			} else {
				steady += took
				row.SteadyIngests++
				row.SPQueries += snap.RefineStats.SPQueries
			}
			if mi == 0 {
				refClusters = append(refClusters, len(snap.Clusters))
			} else if len(snap.Clusters) != refClusters[i] {
				return nil, fmt.Errorf("experiments: stream-ingest %s ingest %d: output diverges (%d clusters, cached had %d)",
					mode.name, i, len(snap.Clusters), refClusters[i])
			}
			row.Clusters = len(snap.Clusters)
		}
		row.PerIngestMs = ms(steady) / float64(row.SteadyIngests)
		cs := c.CacheStats()
		row.CacheHits, row.CacheMisses = cs.Hits, cs.Misses
		rep.Modes = append(rep.Modes, row)
	}
	if cached, uncached := rep.Modes[0].PerIngestMs, rep.Modes[1].PerIngestMs; cached > 0 {
		rep.Speedup = uncached / cached
	}
	return rep, nil
}
