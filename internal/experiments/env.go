// Package experiments reproduces the paper's evaluation (§IV): every
// table and figure has a runner that generates the workload, executes
// the systems under test, and reports paper-vs-measured rows. The
// runners are shared by cmd/neatbench (human-readable reports) and the
// repository-level testing.B benchmarks.
//
// Scaling: the paper's largest configurations (1.27M points; TraClus at
// 334,735 s) are impractical to regenerate verbatim against a quadratic
// baseline, so the environment supports a scale factor that shrinks
// both the maps and the object counts while preserving the
// experimental shape. Distance thresholds (ε) are scaled by the map's
// linear factor. All reports state the scale they ran at.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/mapgen"
	"repro/internal/mobisim"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// PaperObjectCounts are the per-map object counts of Table II.
var PaperObjectCounts = []int{500, 1000, 2000, 3000, 5000}

// Regions in report order.
var Regions = []string{"ATL", "SJ", "MIA"}

// Env lazily builds and caches the maps, layouts, and datasets the
// experiments share. An Env is not safe for concurrent use.
type Env struct {
	scale    float64
	graphs   map[string]*roadnet.Graph
	layouts  map[string]mobisim.Layout
	sims     map[string]*mobisim.Simulator
	datasets map[string]traj.Dataset
}

// NewEnv creates an environment at the given scale in (0, 1]. Scale 1
// reproduces the paper's full map and dataset sizes.
func NewEnv(scale float64) (*Env, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("experiments: scale %g out of (0, 1]", scale)
	}
	return &Env{
		scale:    scale,
		graphs:   make(map[string]*roadnet.Graph),
		layouts:  make(map[string]mobisim.Layout),
		sims:     make(map[string]*mobisim.Simulator),
		datasets: make(map[string]traj.Dataset),
	}, nil
}

// Scale returns the environment's scale factor.
func (e *Env) Scale() float64 { return e.scale }

// LinearScale returns the approximate linear shrink factor of the maps
// (square root of the areal scale); distance thresholds are multiplied
// by this to stay proportionate.
func (e *Env) LinearScale() float64 { return math.Sqrt(e.scale) }

// Epsilon scales a paper distance threshold (meters) to the
// environment's map size.
func (e *Env) Epsilon(paperMeters float64) float64 {
	return paperMeters * e.LinearScale()
}

// Objects scales a paper object count, keeping at least 5.
func (e *Env) Objects(paperCount int) int {
	n := int(float64(paperCount) * e.scale)
	if n < 5 {
		n = 5
	}
	return n
}

// Graph returns the (cached) road network for a region code.
func (e *Env) Graph(region string) (*roadnet.Graph, error) {
	if g, ok := e.graphs[region]; ok {
		return g, nil
	}
	cfg, ok := mapgen.Presets()[region]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown region %q", region)
	}
	if e.scale < 1 {
		cfg = cfg.Scaled(e.scale)
	}
	g, err := mapgen.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate %s: %w", region, err)
	}
	e.graphs[region] = g
	return g, nil
}

// Layout returns the (cached) hotspot/destination layout for a region,
// shared by all of the region's datasets as in the paper's setup.
func (e *Env) Layout(region string) (mobisim.Layout, error) {
	if l, ok := e.layouts[region]; ok {
		return l, nil
	}
	sim, err := e.simulator(region)
	if err != nil {
		return mobisim.Layout{}, err
	}
	cfg := e.simConfig(region, 500)
	l, err := sim.PlanLayout(cfg)
	if err != nil {
		return mobisim.Layout{}, fmt.Errorf("experiments: layout %s: %w", region, err)
	}
	e.layouts[region] = l
	return l, nil
}

func (e *Env) simulator(region string) (*mobisim.Simulator, error) {
	if s, ok := e.sims[region]; ok {
		return s, nil
	}
	g, err := e.Graph(region)
	if err != nil {
		return nil, err
	}
	s := mobisim.New(g)
	e.sims[region] = s
	return s, nil
}

// regionSeed gives each region a stable dataset seed.
func regionSeed(region string) int64 {
	var h int64
	for _, r := range region {
		h = h*31 + int64(r)
	}
	return h
}

func (e *Env) simConfig(region string, paperObjects int) mobisim.Config {
	name := fmt.Sprintf("%s%d", region, paperObjects)
	cfg := mobisim.DefaultConfig(name, e.Objects(paperObjects), regionSeed(region)+int64(paperObjects))
	// Hotspot radius shrinks with the map.
	cfg.HotspotRadius = 800 * e.LinearScale()
	if cfg.HotspotRadius < 150 {
		cfg.HotspotRadius = 150
	}
	return cfg
}

// Dataset returns the (cached) mobility dataset for a region at a
// paper-scale object count (e.g. "SJ", 2000 reproduces SJ2000 scaled).
func (e *Env) Dataset(region string, paperObjects int) (traj.Dataset, error) {
	key := fmt.Sprintf("%s%d", region, paperObjects)
	if d, ok := e.datasets[key]; ok {
		return d, nil
	}
	sim, err := e.simulator(region)
	if err != nil {
		return traj.Dataset{}, err
	}
	layout, err := e.Layout(region)
	if err != nil {
		return traj.Dataset{}, err
	}
	ds, err := sim.SimulateWithLayout(e.simConfig(region, paperObjects), layout)
	if err != nil {
		return traj.Dataset{}, fmt.Errorf("experiments: simulate %s: %w", key, err)
	}
	e.datasets[key] = ds
	return ds, nil
}
