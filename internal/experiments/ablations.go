package experiments

import (
	"fmt"
	"time"

	"repro/internal/neat"
)

// nowSeconds returns a monotonic timestamp in seconds for coarse
// experiment timing.
func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// AblationWeights runs flow-NEAT on ATL500 under each weight preset of
// §III-B2 and reports how the flows change (design decision 4 in
// DESIGN.md).
func AblationWeights(e *Env) (*Table, error) {
	t := &Table{
		ID:     "ablation-weights",
		Title:  "Merging-selectivity weight presets on ATL500 (paper §III-B2)",
		Header: []string{"Preset", "(wq,wk,wv)", "Flows", "AvgRouteM", "MaxRouteM", "AvgCard"},
		Notes: []string{
			"flow-only follows major traffic streams; density-only concentrates on dense roads; speed-only prefers fast roads",
		},
	}
	g, err := e.Graph("ATL")
	if err != nil {
		return nil, err
	}
	ds, err := e.Dataset("ATL", 500)
	if err != nil {
		return nil, err
	}
	p := neat.NewPipeline(g)
	presets := []struct {
		name string
		w    neat.Weights
	}{
		{"flow-only", neat.WeightsFlowOnly},
		{"density-only", neat.WeightsDensityOnly},
		{"speed-only", neat.WeightsSpeedOnly},
		{"balanced", neat.WeightsBalanced},
		{"traffic-monitoring", neat.WeightsTrafficMonitoring},
	}
	for _, preset := range presets {
		cfg := e.NEATConfig()
		cfg.Flow.Weights = preset.w
		res, err := p.Run(ds, cfg, neat.LevelFlow)
		if err != nil {
			return nil, err
		}
		var avg, max, card float64
		for _, f := range res.Flows {
			l := f.RouteLength(g)
			avg += l
			if l > max {
				max = l
			}
			card += float64(f.Cardinality())
		}
		if n := float64(len(res.Flows)); n > 0 {
			avg /= n
			card /= n
		}
		t.AddRow(preset.name,
			fmt.Sprintf("(%.2g,%.2g,%.2g)", preset.w.Flow, preset.w.Density, preset.w.Speed),
			len(res.Flows), avg, max, card)
	}
	return t, nil
}

// AblationBeta varies the domination threshold β (design decision 2):
// β=+Inf reduces Phase 2 to pure maxFlow-neighbor merging, smaller β
// values split off dominant cross flows more aggressively.
func AblationBeta(e *Env) (*Table, error) {
	t := &Table{
		ID:     "ablation-beta",
		Title:  "Domination threshold β on ATL500 (paper §III-B2)",
		Header: []string{"Beta", "Flows", "AvgRouteM", "AvgCard"},
	}
	g, err := e.Graph("ATL")
	if err != nil {
		return nil, err
	}
	ds, err := e.Dataset("ATL", 500)
	if err != nil {
		return nil, err
	}
	p := neat.NewPipeline(g)
	for _, beta := range []float64{0 /* = +Inf */, 20, 10, 5, 2, 1.2} {
		cfg := e.NEATConfig()
		cfg.Flow.Beta = beta
		res, err := p.Run(ds, cfg, neat.LevelFlow)
		if err != nil {
			return nil, err
		}
		var avg, card float64
		for _, f := range res.Flows {
			avg += f.RouteLength(g)
			card += float64(f.Cardinality())
		}
		if n := float64(len(res.Flows)); n > 0 {
			avg /= n
			card /= n
		}
		label := fmt.Sprintf("%g", beta)
		if beta == 0 {
			label = "+Inf"
		}
		t.AddRow(label, len(res.Flows), avg, card)
	}
	return t, nil
}

// AblationSP compares the shortest-path kernels available to Phase 3
// (design decision 5): the paper's Dijkstra, A*, and bidirectional
// Dijkstra, all with ELB on.
func AblationSP(e *Env) (*Table, error) {
	t := &Table{
		ID:     "ablation-sp",
		Title:  "Phase 3 shortest-path kernel on ATL500 (ELB on)",
		Header: []string{"Kernel", "Clusters", "Seconds", "SPQueries", "SettledNodes"},
	}
	g, err := e.Graph("ATL")
	if err != nil {
		return nil, err
	}
	ds, err := e.Dataset("ATL", 500)
	if err != nil {
		return nil, err
	}
	p := neat.NewPipeline(g)
	flowRes, err := p.Run(ds, e.NEATConfig(), neat.LevelFlow)
	if err != nil {
		return nil, err
	}
	for _, algo := range []neat.SPAlgo{neat.SPDijkstra, neat.SPAStar, neat.SPBidirectional, neat.SPALT, neat.SPCH} {
		cfg := neat.RefineConfig{
			Epsilon: e.Epsilon(6500),
			UseELB:  true,
			Bounded: algo == neat.SPDijkstra,
			Algo:    algo,
		}
		start := nowSeconds()
		clusters, stats, err := neat.RefineFlows(g, flowRes.Flows, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(algo.String(), len(clusters), nowSeconds()-start, stats.SPQueries, stats.SettledNodes)
	}
	return t, nil
}
