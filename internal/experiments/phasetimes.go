package experiments

import (
	"fmt"
	"time"

	"repro/internal/neat"
)

// PhaseTiming is one row of the phase-times artifact: a full opt-NEAT
// run under one execution shape, with the per-phase wall clock and the
// result shape (which must be identical across rows — sharding and
// parallelism are execution knobs, not result knobs).
type PhaseTiming struct {
	Config   string  `json:"config"`
	Shards   int     `json:"shards"`
	Workers  int     `json:"workers"`
	Phase1Ms float64 `json:"phase1_ms"`
	Phase2Ms float64 `json:"phase2_ms"`
	Phase3Ms float64 `json:"phase3_ms"`
	TotalMs  float64 `json:"total_ms"`
	Flows    int     `json:"flows"`
	Clusters int     `json:"clusters"`
}

// PhaseTimesReport is the JSON document neatbench -phasejson emits:
// one small fixed scenario (the ATL500 workload at the environment's
// scale) run through every execution shape of the staged engine. CI
// uploads it as BENCH_phase_times.json so the per-phase perf
// trajectory accumulates across commits.
type PhaseTimesReport struct {
	Scale        float64       `json:"scale"`
	Region       string        `json:"region"`
	Trajectories int           `json:"trajectories"`
	Segments     int           `json:"segments"`
	Fragments    int           `json:"fragments"`
	Runs         []PhaseTiming `json:"runs"`
}

// phaseTimeShapes are the execution shapes PhaseTimes benchmarks:
// the classic serial plan, sharded Phase 1/2, and sharded + all-core
// workers.
var phaseTimeShapes = []struct {
	name    string
	shards  int
	workers int
}{
	{"serial", 0, 0},
	{"sharded", 4, 0},
	{"sharded-parallel", 4, -1},
}

// PhaseTimes runs the fixed scenario and collects the report. It
// fails if any execution shape changes the clustering output — the
// timings of divergent runs would not be comparable.
func PhaseTimes(e *Env) (*PhaseTimesReport, error) {
	g, err := e.Graph("ATL")
	if err != nil {
		return nil, err
	}
	ds, err := e.Dataset("ATL", 500)
	if err != nil {
		return nil, err
	}
	rep := &PhaseTimesReport{
		Scale:        e.Scale(),
		Region:       "ATL",
		Trajectories: len(ds.Trajectories),
		Segments:     g.NumSegments(),
	}
	p := neat.NewPipeline(g)
	refFlows, refClusters := -1, -1
	for _, shape := range phaseTimeShapes {
		cfg := e.NEATConfig()
		cfg.Shards = shape.shards
		var res *neat.Result
		if shape.workers != 0 {
			res, err = p.RunParallel(ds, cfg, neat.LevelOpt, shape.workers)
		} else {
			res, err = p.Run(ds, cfg, neat.LevelOpt)
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: phase-times %s: %w", shape.name, err)
		}
		if refFlows < 0 {
			refFlows, refClusters = len(res.Flows), len(res.Clusters)
			rep.Fragments = res.NumFragments
		} else if len(res.Flows) != refFlows || len(res.Clusters) != refClusters {
			return nil, fmt.Errorf("experiments: phase-times %s: output diverges (%d/%d flows, %d/%d clusters)",
				shape.name, len(res.Flows), refFlows, len(res.Clusters), refClusters)
		}
		rep.Runs = append(rep.Runs, PhaseTiming{
			Config:   shape.name,
			Shards:   shape.shards,
			Workers:  shape.workers,
			Phase1Ms: ms(res.Timing.Phase1),
			Phase2Ms: ms(res.Timing.Phase2),
			Phase3Ms: ms(res.Timing.Phase3),
			TotalMs:  ms(res.Timing.Total()),
			Flows:    len(res.Flows),
			Clusters: len(res.Clusters),
		})
	}
	return rep, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
