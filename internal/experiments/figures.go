package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/neat"
	"repro/internal/traclus"
	"repro/internal/viz"
)

// traclusMinLns scales the paper's MinLns with the object count so the
// density threshold stays proportionate at reduced scales.
func (e *Env) traclusMinLns(paperMinLns int) int {
	m := int(math.Round(float64(paperMinLns) * e.Scale()))
	if m < 2 {
		m = 2
	}
	return m
}

// Fig3 regenerates the Fig 3 visualization pipeline on ATL500: the
// input dataset, the Phase 2 flow clusters, and the refined clusters at
// ε = 6500 m (scaled). When outDir is non-empty, three SVGs are written
// there (fig3a-input.svg, fig3b-flows.svg, fig3c-clusters.svg).
func Fig3(e *Env, outDir string) (*Table, error) {
	t := &Table{
		ID:     "fig3",
		Title:  "NEAT clustering of ATL500 (paper Fig 3: 500 trajectories -> 31 flows -> 2 clusters)",
		Header: []string{"Stage", "Count", "Paper"},
	}
	g, err := e.Graph("ATL")
	if err != nil {
		return nil, err
	}
	ds, err := e.Dataset("ATL", 500)
	if err != nil {
		return nil, err
	}
	layout, err := e.Layout("ATL")
	if err != nil {
		return nil, err
	}
	p := neat.NewPipeline(g)
	res, err := p.Run(ds, e.NEATConfig(), neat.LevelOpt)
	if err != nil {
		return nil, err
	}
	t.AddRow("input trajectories", len(ds.Trajectories), 500)
	t.AddRow("flow clusters (minCard=5)", len(res.Flows), 31)
	t.AddRow(fmt.Sprintf("final clusters (eps=%.0fm)", e.Epsilon(6500)), len(res.Clusters), 2)
	t.Notes = append(t.Notes,
		"flows concentrate between the two hotspots and the three destinations; refinement merges flows whose routes end near each other")

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: fig3 output dir: %w", err)
		}
		write := func(name string, draw func(c *viz.Canvas) error) error {
			c := viz.NewCanvas(g, 1000)
			c.DrawNetwork()
			if err := draw(c); err != nil {
				return err
			}
			c.DrawMarkers(layout.Hotspots, layout.Destinations)
			f, err := os.Create(filepath.Join(outDir, name))
			if err != nil {
				return fmt.Errorf("experiments: fig3 create %s: %w", name, err)
			}
			defer f.Close()
			if _, err := c.WriteTo(f); err != nil {
				return fmt.Errorf("experiments: fig3 write %s: %w", name, err)
			}
			return f.Close()
		}
		if err := write("fig3a-input.svg", func(c *viz.Canvas) error { c.DrawDataset(ds); return nil }); err != nil {
			return nil, err
		}
		if err := write("fig3b-flows.svg", func(c *viz.Canvas) error { return c.DrawFlows(res.Flows) }); err != nil {
			return nil, err
		}
		if err := write("fig3c-clusters.svg", func(c *viz.Canvas) error { return c.DrawClusters(res.Clusters) }); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "SVGs written to "+outDir)
	}
	return t, nil
}

// Fig4 regenerates Fig 4: TraClus on ATL500 at the two published
// parameter settings, optionally writing the representative-trajectory
// visualizations.
func Fig4(e *Env, outDir string) (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "TraClus on ATL500 (paper Fig 4: 81 clusters at eps=10/MinLns=30, 460 at eps=1/MinLns=1)",
		Header: []string{"Setting", "Clusters", "Paper", "Noise", "AvgRepLenM"},
		Notes: []string{
			"TraClus clusters are short, discrete dense regions — they miss the route continuity NEAT captures (compare AvgRepLen with fig5)",
		},
	}
	ds, err := e.Dataset("ATL", 500)
	if err != nil {
		return nil, err
	}
	settings := []struct {
		label   string
		cfg     traclus.Config
		paper   int
		svgName string
	}{
		{"eps=10 MinLns=30", traclus.Config{Epsilon: 10, MinLns: e.traclusMinLns(30)}, 81, "fig4a-traclus.svg"},
		{"eps=1 MinLns=1", traclus.Config{Epsilon: 1, MinLns: 1}, 460, "fig4b-traclus.svg"},
	}
	for _, s := range settings {
		res, err := traclus.Run(ds, s.cfg)
		if err != nil {
			return nil, err
		}
		var avg float64
		for _, c := range res.Clusters {
			avg += c.RepresentativeLength()
		}
		if len(res.Clusters) > 0 {
			avg /= float64(len(res.Clusters))
		}
		t.AddRow(s.label, len(res.Clusters), s.paper, res.NoiseSegments, avg)

		if outDir != "" {
			g, err := e.Graph("ATL")
			if err != nil {
				return nil, err
			}
			c := viz.NewCanvas(g, 1000)
			c.DrawNetwork()
			c.DrawTraClus(res.Clusters)
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return nil, fmt.Errorf("experiments: fig4 output dir: %w", err)
			}
			f, err := os.Create(filepath.Join(outDir, s.svgName))
			if err != nil {
				return nil, fmt.Errorf("experiments: fig4 create: %w", err)
			}
			if _, err := c.WriteTo(f); err != nil {
				f.Close()
				return nil, fmt.Errorf("experiments: fig4 write: %w", err)
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// Fig5 regenerates Fig 5: flow-NEAT vs TraClus on the ATL datasets —
// average and maximum representative route lengths (5a, 5b), resulting
// cluster counts (5c), and running times (5d, the semi-log comparison
// where NEAT wins by orders of magnitude).
func Fig5(e *Env) (*Table, error) {
	t := &Table{
		ID:    "fig5",
		Title: "flow-NEAT vs TraClus on ATL datasets (paper Fig 5)",
		Header: []string{"Dataset", "Points",
			"NEAT#", "NEATAvgM", "NEATMaxM", "NEATSec",
			"TC#", "TCAvgM", "TCMaxM", "TCSec", "Speedup"},
		Notes: []string{
			"paper anchors: TraClus 2573.5 s vs opt-NEAT 1.29 s on ATL500; 334735.1 s vs 59.7 s on ATL5000 (>3 orders of magnitude)",
			"NEAT representative routes are several times longer than TraClus representatives (5a/5b) and there are fewer of them (5c)",
		},
	}
	g, err := e.Graph("ATL")
	if err != nil {
		return nil, err
	}
	p := neat.NewPipeline(g)
	cfg := e.NEATConfig()
	tcCfg := traclus.Config{Epsilon: 10, MinLns: e.traclusMinLns(30)}
	for _, paperObjects := range PaperObjectCounts {
		ds, err := e.Dataset("ATL", paperObjects)
		if err != nil {
			return nil, err
		}
		res, err := p.Run(ds, cfg, neat.LevelOpt)
		if err != nil {
			return nil, err
		}
		var nAvg, nMax float64
		for _, f := range res.Flows {
			l := f.RouteLength(g)
			nAvg += l
			if l > nMax {
				nMax = l
			}
		}
		if len(res.Flows) > 0 {
			nAvg /= float64(len(res.Flows))
		}
		neatSec := res.Timing.Total().Seconds()

		tcRes, err := traclus.Run(ds, tcCfg)
		if err != nil {
			return nil, err
		}
		var tAvg, tMax float64
		for _, c := range tcRes.Clusters {
			l := c.RepresentativeLength()
			tAvg += l
			if l > tMax {
				tMax = l
			}
		}
		if len(tcRes.Clusters) > 0 {
			tAvg /= float64(len(tcRes.Clusters))
		}
		tcSec := tcRes.Timing.Total().Seconds()
		speedup := math.Inf(1)
		if neatSec > 0 {
			speedup = tcSec / neatSec
		}
		t.AddRow(ds.Name, ds.TotalPoints(),
			len(res.Flows), nAvg, nMax, neatSec,
			len(tcRes.Clusters), tAvg, tMax, tcSec,
			fmt.Sprintf("%.0fx", speedup))
	}
	return t, nil
}

// Fig6 regenerates Fig 6: the scaling of base-, flow-, and opt-NEAT on
// the MIA datasets (6a) and the relative cost of Phase 1 vs Phase 2
// (6b).
func Fig6(e *Env) (*Table, error) {
	t := &Table{
		ID:    "fig6",
		Title: "NEAT phase scaling (paper Fig 6: near-linear curves; Phase 1 dominates Phase 2)",
		Header: []string{"Dataset", "Points",
			"BaseSec", "FlowSec", "OptSec", "Phase1Sec", "Phase2Sec", "P1/P2"},
		Notes: []string{
			"opt-NEAT nearly overlaps flow-NEAT because ELB keeps Phase 3 cheap (6a)",
			"Phase 1 processes every location point while Phase 2 processes only base clusters, so Phase 1 dominates (6b)",
		},
	}
	for _, region := range []string{"MIA", "ATL"} {
		g, err := e.Graph(region)
		if err != nil {
			return nil, err
		}
		p := neat.NewPipeline(g)
		cfg := e.NEATConfig()
		for _, paperObjects := range PaperObjectCounts {
			ds, err := e.Dataset(region, paperObjects)
			if err != nil {
				return nil, err
			}
			res, err := p.Run(ds, cfg, neat.LevelOpt)
			if err != nil {
				return nil, err
			}
			p1 := res.Timing.Phase1.Seconds()
			p2 := res.Timing.Phase2.Seconds()
			base := p1
			flow := p1 + p2
			opt := res.Timing.Total().Seconds()
			ratio := math.Inf(1)
			if p2 > 0 {
				ratio = p1 / p2
			}
			t.AddRow(ds.Name, ds.TotalPoints(), base, flow, opt, p1, p2, fmt.Sprintf("%.1fx", ratio))
		}
	}
	return t, nil
}

// Fig7 regenerates Fig 7: the effectiveness of the Euclidean lower
// bound — Phase 3 cost with ELB versus full Dijkstra computation, on
// the ATL (7a) and SJ (7b) datasets. The SJ series demonstrates that
// refinement cost tracks the number of flows (Table III), not the
// dataset size.
func Fig7(e *Env) (*Table, error) {
	t := &Table{
		ID:    "fig7",
		Title: "ELB vs Dijkstra in Phase 3 (paper Fig 7)",
		Header: []string{"Dataset", "Flows",
			"ELBSec", "DijkstraSec", "ELBQueries", "DijkstraQueries", "PairsPruned"},
		Notes: []string{
			"cost follows the flow count, not dataset size: compare SJ rows against Table III",
		},
	}
	for _, region := range []string{"ATL", "SJ"} {
		g, err := e.Graph(region)
		if err != nil {
			return nil, err
		}
		p := neat.NewPipeline(g)
		for _, paperObjects := range PaperObjectCounts {
			ds, err := e.Dataset(region, paperObjects)
			if err != nil {
				return nil, err
			}
			flowRes, err := p.Run(ds, e.NEATConfig(), neat.LevelFlow)
			if err != nil {
				return nil, err
			}
			elbCfg := neat.RefineConfig{Epsilon: e.Epsilon(6500), UseELB: true, Bounded: true}
			_, elbStats, err := neat.RefineFlows(g, flowRes.Flows, elbCfg)
			if err != nil {
				return nil, err
			}
			elbStart := nowSeconds()
			if _, _, err := neat.RefineFlows(g, flowRes.Flows, elbCfg); err != nil {
				return nil, err
			}
			elbSec := nowSeconds() - elbStart

			djCfg := neat.RefineConfig{Epsilon: e.Epsilon(6500), UseELB: false, Bounded: false}
			djStart := nowSeconds()
			_, djStats, err := neat.RefineFlows(g, flowRes.Flows, djCfg)
			if err != nil {
				return nil, err
			}
			djSec := nowSeconds() - djStart

			t.AddRow(ds.Name, len(flowRes.Flows), elbSec, djSec,
				elbStats.SPQueries, djStats.SPQueries, elbStats.ELBPruned)
		}
	}
	return t, nil
}

// Variant regenerates the §IV.C hybrid comparison on SJ2000: TraClus'
// grouping over NEAT base clusters with the modified Hausdorff
// distance, versus the full NEAT pipeline.
func Variant(e *Env) (*Table, error) {
	t := &Table{
		ID:     "variant",
		Title:  "TraClus-on-base-clusters hybrid vs NEAT on SJ2000 (paper §IV.C: 6396.79 s / 117 clusters vs 11.68 s / 42 flows + 14 clusters)",
		Header: []string{"System", "Input", "Clusters", "Seconds", "SPQueries"},
	}
	g, err := e.Graph("SJ")
	if err != nil {
		return nil, err
	}
	ds, err := e.Dataset("SJ", 2000)
	if err != nil {
		return nil, err
	}
	p := neat.NewPipeline(g)

	start := nowSeconds()
	res, err := p.Run(ds, e.NEATConfig(), neat.LevelOpt)
	if err != nil {
		return nil, err
	}
	neatSec := nowSeconds() - start
	t.AddRow("opt-NEAT",
		fmt.Sprintf("%d t-fragments / %d base clusters", res.NumFragments, len(res.BaseClusters)),
		fmt.Sprintf("%d flows -> %d clusters", len(res.Flows), len(res.Clusters)),
		neatSec, res.RefineStats.SPQueries)

	// The hybrid's ε is tighter than Phase 3's: it groups individual
	// base clusters (one segment each), not whole flow routes, so the
	// paper-scale threshold would connect everything.
	vres, err := traclus.RunVariant(g, res.BaseClusters, traclus.VariantConfig{
		Epsilon: e.Epsilon(500),
		MinLns:  2,
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("TraClus hybrid",
		fmt.Sprintf("%d base clusters", vres.NumBaseClusters),
		len(vres.Clusters), vres.Elapsed.Seconds(), vres.SPQueries)
	t.Notes = append(t.Notes,
		"the hybrid pays four full shortest paths per base-cluster pair; NEAT's first two phases need no distance computation at all")
	return t, nil
}
