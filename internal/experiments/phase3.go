package experiments

import (
	"fmt"
	"time"

	"repro/internal/neat"
)

// Phase3Workers measures the Phase 3 ε-graph builders head to head on
// the SJ series (whose flow counts drive refinement cost, Table III):
// the serial pairwise scan with ELB + bounded expansion against the
// batched one-to-many builder (RefineConfig.Workers != 0, Dijkstra
// kernel). The batched builder collapses the up-to 4·F·(F−1)/2
// point-to-point queries into at most 2F bounded expansions, so the
// speedup holds even on a single core; extra workers shard the
// expansions on top. Both builders produce identical clusters — the
// row's Clusters column is asserted equal across modes.
func Phase3Workers(e *Env) (*Table, error) {
	t := &Table{
		ID:     "phase3-workers",
		Title:  "Phase 3 refinement: serial pairwise scan vs batched one-to-many builder (SJ datasets)",
		Header: []string{"Dataset", "Flows", "SerialMs", "BatchedMs", "Speedup", "Expansions", "GridPruned", "Clusters"},
		Notes: []string{
			"serial = ELB + bounded expansion (the paper's Fig 7 best case); batched = Workers:-1 one-to-many Dijkstra",
			"Expansions counts bounded one-to-many Dijkstra runs (<= 2F); GridPruned counts pairs rejected by the Euclidean point grid",
			"clustering output is byte-identical across modes (asserted)",
		},
	}
	g, err := e.Graph("SJ")
	if err != nil {
		return nil, err
	}
	p := neat.NewPipeline(g)
	serialCfg := neat.RefineConfig{Epsilon: e.Epsilon(6500), UseELB: true, Bounded: true}
	batchedCfg := neat.RefineConfig{Epsilon: e.Epsilon(6500), UseELB: true, Workers: -1}
	for _, paperObjects := range PaperObjectCounts {
		ds, err := e.Dataset("SJ", paperObjects)
		if err != nil {
			return nil, err
		}
		flowRes, err := p.Run(ds, e.NEATConfig(), neat.LevelFlow)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		serial, _, err := neat.RefineFlows(g, flowRes.Flows, serialCfg)
		if err != nil {
			return nil, err
		}
		serialMs := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		batched, stats, err := neat.RefineFlows(g, flowRes.Flows, batchedCfg)
		if err != nil {
			return nil, err
		}
		batchedMs := float64(time.Since(start).Microseconds()) / 1000
		if len(batched) != len(serial) {
			return nil, fmt.Errorf("experiments: phase3-workers %s: batched produced %d clusters, serial %d",
				ds.Name, len(batched), len(serial))
		}
		speedup := 0.0
		if batchedMs > 0 {
			speedup = serialMs / batchedMs
		}
		t.AddRow(ds.Name, len(flowRes.Flows), serialMs, batchedMs, speedup,
			stats.Expansions, stats.PrunedPairs, len(batched))
	}
	return t, nil
}
