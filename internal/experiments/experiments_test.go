package experiments

import (
	"strings"
	"testing"
)

// tinyEnv builds the smallest environment that still exercises every
// runner; the full-scale runs live in cmd/neatbench.
func tinyEnv(t testing.TB) *Env {
	t.Helper()
	e, err := NewEnv(0.02)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEnvValidation(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		if _, err := NewEnv(s); err == nil {
			t.Errorf("scale %g accepted", s)
		}
	}
	e, err := NewEnv(1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Scale() != 1 || e.LinearScale() != 1 {
		t.Error("scale accessors wrong")
	}
}

func TestEnvScaling(t *testing.T) {
	e := tinyEnv(t)
	if got := e.Objects(500); got != 10 {
		t.Errorf("Objects(500) = %d, want 10", got)
	}
	if got := e.Objects(100); got != 5 {
		t.Errorf("Objects(100) = %d, want 5 (floor)", got)
	}
	eps := e.Epsilon(6500)
	if eps <= 0 || eps >= 6500 {
		t.Errorf("Epsilon(6500) = %v", eps)
	}
}

func TestEnvCaching(t *testing.T) {
	e := tinyEnv(t)
	g1, err := e.Graph("ATL")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e.Graph("ATL")
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("Graph not cached")
	}
	d1, err := e.Dataset("ATL", 500)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e.Dataset("ATL", 500)
	if err != nil {
		t.Fatal(err)
	}
	if &d1.Trajectories[0] != &d2.Trajectories[0] {
		t.Error("Dataset not cached")
	}
	if _, err := e.Graph("XX"); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestTableRunnersSmoke(t *testing.T) {
	e := tinyEnv(t)
	for _, id := range []string{"table1", "table2", "table3"} {
		tab, err := Run(e, id, "")
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
		if !strings.Contains(tab.String(), tab.Title) {
			t.Errorf("%s render missing title", id)
		}
	}
}

func TestFigureRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runners are slow in -short mode")
	}
	e := tinyEnv(t)
	dir := t.TempDir()
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "variant", "accuracy", "baselines", "workloads", "mapmatch", "traclus-index"} {
		tab, err := Run(e, id, dir)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestScalingRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow in -short mode")
	}
	e := tinyEnv(t)
	tab, err := Run(e, "scaling", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("scaling rows = %d, want 4", len(tab.Rows))
	}
}

func TestAblationRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow in -short mode")
	}
	e := tinyEnv(t)
	for _, id := range []string{"ablation-weights", "ablation-beta", "ablation-sp", "phase3-workers"} {
		tab, err := Run(e, id, "")
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	e := tinyEnv(t)
	if _, err := Run(e, "fig99", ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestOrderCoversRegistry(t *testing.T) {
	order := Order()
	reg := Registry()
	if len(order) != len(reg) {
		t.Fatalf("Order has %d ids, registry %d", len(order), len(reg))
	}
	seen := map[string]bool{}
	for _, id := range order {
		if _, ok := reg[id]; !ok {
			t.Errorf("ordered id %q not in registry", id)
		}
		if seen[id] {
			t.Errorf("id %q duplicated", id)
		}
		seen[id] = true
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"A", "LongHeader"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("v", 3.14159)
	tab.AddRow(12345, 0.0)
	s := tab.String()
	for _, want := range []string{"demo", "LongHeader", "3.142", "12345", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}
