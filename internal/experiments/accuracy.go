package experiments

import (
	"repro/internal/neat"
	"repro/internal/quality"
	"repro/internal/traclus"
)

// Accuracy quantifies the paper's effectiveness argument (§IV.C's
// visual comparison) with the metrics of internal/quality: NEAT's
// clusters should cover the traffic with far fewer, far longer, and
// internally consistent representatives, while TraClus fragments the
// same traffic into short discrete pieces.
func Accuracy(e *Env) (*Table, error) {
	t := &Table{
		ID:    "accuracy",
		Title: "Clustering effectiveness, NEAT vs TraClus (quantifying §IV.C)",
		Header: []string{"Dataset", "System", "Clusters", "UnitCov", "TrajCov",
			"AvgRepM", "MaxRepM", "FlowConsistency"},
		Notes: []string{
			"UnitCov/TrajCov: fraction of clustering units / input trajectories captured",
			"FlowConsistency: median fraction of a flow's route its trajectories traverse (NEAT only)",
		},
	}
	for _, region := range []string{"ATL", "SJ"} {
		g, err := e.Graph(region)
		if err != nil {
			return nil, err
		}
		ds, err := e.Dataset(region, 500)
		if err != nil {
			return nil, err
		}
		p := neat.NewPipeline(g)
		nres, err := p.Run(ds, e.NEATConfig(), neat.LevelFlow)
		if err != nil {
			return nil, err
		}
		nm := quality.EvaluateNEAT(g, nres, len(ds.Trajectories))
		t.AddRow(ds.Name, "flow-NEAT", nm.NumClusters, nm.UnitCoverage, nm.TrajectoryCoverage,
			nm.AvgRepLength, nm.MaxRepLength, nm.FlowConsistency)

		tres, err := traclus.Run(ds, traclus.Config{Epsilon: 10, MinLns: e.traclusMinLns(30)})
		if err != nil {
			return nil, err
		}
		tm := quality.EvaluateTraClus(tres, len(ds.Trajectories))
		t.AddRow(ds.Name, "TraClus", tm.NumClusters, tm.UnitCoverage, tm.TrajectoryCoverage,
			tm.AvgRepLength, tm.MaxRepLength, "-")
	}
	return t, nil
}
