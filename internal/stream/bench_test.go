package stream

import (
	"testing"
)

// BenchmarkStreamIngest measures the steady-state per-batch cost of the
// windowed incremental clusterer — the §III-C online path — with the
// persistent distance cache on (the default) and off (legacy
// from-scratch merge). The window is warmed to capacity before the
// timer starts, so every measured ingest evicts one batch and admits
// one: the cached mode's win is the point of the cross-ingest cache.
func BenchmarkStreamIngest(b *testing.B) {
	g, ds := streamSetup(b)
	modes := []struct {
		name    string
		entries int
	}{
		{"cached", 0},    // persistent cache + incremental ε-graph
		{"uncached", -1}, // legacy full merge, no cache
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			cfg := streamConfig()
			cfg.Window = 4
			cfg.CacheEntries = mode.entries
			bs := batches(ds, 6)
			c, err := New(g, cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Warm the window to steady state.
			for i := 0; i < cfg.Window; i++ {
				if _, err := c.Ingest(bs[i%len(bs)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Ingest(bs[(i+cfg.Window)%len(bs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
