package stream

import (
	"testing"
)

// BenchmarkIngest measures the steady-state per-batch cost of the
// windowed incremental clusterer — the §III-C online path.
func BenchmarkIngest(b *testing.B) {
	g, ds := streamSetup(b)
	cfg := streamConfig()
	cfg.Window = 4
	bs := batches(ds, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := New(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Warm the window to steady state.
		for _, batch := range bs[:4] {
			if _, err := c.Ingest(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		for _, batch := range bs[4:] {
			if _, err := c.Ingest(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
}
