package stream

import (
	"testing"

	"repro/internal/obs"
)

// TestEvictionAccounting verifies the window bookkeeping exactly: the
// flows evicted at each batch are precisely those that aged past the
// window, snapshot counters reconcile (standing = sum(new) -
// sum(evicted)), and the obs series mirror the snapshots.
func TestEvictionAccounting(t *testing.T) {
	g, ds := streamSetup(t)
	cfg := streamConfig()
	cfg.Window = 2
	reg := obs.NewRegistry()
	cfg.Obs = reg
	c, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var newFlows []int // per-batch contribution
	totalNew, totalEvicted := 0, 0
	for i, b := range batches(ds, 5) {
		snap, err := c.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		newFlows = append(newFlows, snap.NewFlows)
		totalNew += snap.NewFlows
		totalEvicted += snap.EvictedFlows

		// With window W, ingesting batch i evicts exactly the flows of
		// batch i-W (earlier ones were already evicted).
		wantEvicted := 0
		if i >= cfg.Window {
			wantEvicted = newFlows[i-cfg.Window]
		}
		if snap.EvictedFlows != wantEvicted {
			t.Errorf("batch %d: evicted %d, want %d", i, snap.EvictedFlows, wantEvicted)
		}
		// Standing is exactly the last W batches' contributions.
		wantStanding := 0
		for j := max(0, i-cfg.Window+1); j <= i; j++ {
			wantStanding += newFlows[j]
		}
		if snap.StandingFlows != wantStanding {
			t.Errorf("batch %d: standing %d, want %d", i, snap.StandingFlows, wantStanding)
		}
		if snap.StandingFlows != totalNew-totalEvicted {
			t.Errorf("batch %d: standing %d != new %d - evicted %d",
				i, snap.StandingFlows, totalNew, totalEvicted)
		}
		if got := len(c.StandingFlows()); got != snap.StandingFlows {
			t.Errorf("batch %d: StandingFlows() = %d, snapshot %d", i, got, snap.StandingFlows)
		}

		// The metrics registry tracks the same accounting.
		if got := reg.Counter("stream_batches_total").Value(); got != int64(i+1) {
			t.Errorf("batch %d: stream_batches_total = %d", i, got)
		}
		if got := reg.Counter("stream_evicted_flows_total").Value(); got != int64(totalEvicted) {
			t.Errorf("batch %d: stream_evicted_flows_total = %d, want %d", i, got, totalEvicted)
		}
		if got := reg.Gauge("stream_standing_flows").Value(); got != float64(snap.StandingFlows) {
			t.Errorf("batch %d: standing gauge = %g, want %d", i, got, snap.StandingFlows)
		}
	}
	if totalEvicted == 0 {
		t.Fatal("workload produced no evictions; accounting untested")
	}
	if got := reg.Counter("stream_new_flows_total").Value(); got != int64(totalNew) {
		t.Errorf("stream_new_flows_total = %d, want %d", got, totalNew)
	}
	if got := reg.Histogram("stream_ingest_seconds", nil).Count(); got != 5 {
		t.Errorf("ingest latency observations = %d, want 5", got)
	}
	// The embedded pipeline shares the registry.
	if got := reg.Counter("neat_runs_total").Value(); got != 5 {
		t.Errorf("neat_runs_total = %d, want 5", got)
	}
}

// TestInstrumentationInertForStream runs the identical batch sequence
// with and without a registry and demands identical snapshots.
func TestInstrumentationInertForStream(t *testing.T) {
	g, ds := streamSetup(t)
	run := func(reg *obs.Registry) []Snapshot {
		cfg := streamConfig()
		cfg.Window = 2
		cfg.Obs = reg
		c, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []Snapshot
		for _, b := range batches(ds, 4) {
			snap, err := c.Ingest(b)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, snap)
		}
		return out
	}
	plain, instrumented := run(nil), run(obs.NewRegistry())
	for i := range plain {
		p, q := plain[i], instrumented[i]
		if p.NewFlows != q.NewFlows || p.EvictedFlows != q.EvictedFlows ||
			p.StandingFlows != q.StandingFlows || len(p.Clusters) != len(q.Clusters) {
			t.Errorf("batch %d: snapshots diverge: %+v vs %+v", i, p, q)
		}
	}
}
