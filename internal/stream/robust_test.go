package stream

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestCloseIsIdempotentAndTyped(t *testing.T) {
	g, ds := streamSetup(t)
	c, err := New(g, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	bs := batches(ds, 3)
	if _, err := c.Ingest(bs[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Close(); err != nil {
			t.Fatalf("Close #%d = %v", i+1, err)
		}
	}
	_, err = c.Ingest(bs[1])
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close: err = %v, want ErrClosed", err)
	}
	// Read-only accessors keep serving the final state.
	if c.Batches() != 1 {
		t.Fatalf("Batches after Close = %d, want 1", c.Batches())
	}
	if len(c.StandingFlows()) == 0 {
		t.Fatal("StandingFlows empty after Close despite an ingest")
	}
}

// TestFailedIngestRollsBackAndRetries drives the same batch sequence
// through a faulty clusterer and a fault-free control. Every failed
// ingest must leave the clusterer state untouched (batch index,
// standing set) so the batch can be retried; once a retry succeeds the
// snapshot must be byte-identical to the control's.
func TestFailedIngestRollsBackAndRetries(t *testing.T) {
	g, ds := streamSetup(t)
	for _, cacheEntries := range []int{0, -1} {
		cfg := streamConfig()
		cfg.Window = 2
		cfg.CacheEntries = cacheEntries
		control, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := fault.New(fault.Config{Seed: 21, Points: map[fault.Point]fault.Spec{
			fault.Ingest:  {ErrProb: 0.3},
			fault.SPQuery: {ErrProb: 0.02},
		}})
		fcfg := cfg
		fcfg.Fault = in
		faulty, err := New(g, fcfg)
		if err != nil {
			t.Fatal(err)
		}
		sawFailure := false
		for bi, b := range batches(ds, 4) {
			want, err := control.Ingest(b)
			if err != nil {
				t.Fatal(err)
			}
			var got Snapshot
			for attempt := 0; ; attempt++ {
				got, err = faulty.Ingest(b)
				if err == nil {
					break
				}
				sawFailure = true
				if !fault.IsInjected(err) {
					t.Fatalf("cache=%d batch %d: non-injected failure %v", cacheEntries, bi, err)
				}
				if faulty.Batches() != bi {
					t.Fatalf("cache=%d batch %d: batch index advanced to %d on failure", cacheEntries, bi, faulty.Batches())
				}
				if attempt == 50 {
					// Statistically unreachable; heal as a backstop so
					// the test cannot loop forever.
					in.SetEnabled(false)
				}
			}
			if renderClusters(got.Clusters) != renderClusters(want.Clusters) {
				t.Fatalf("cache=%d batch %d: clusters diverged from control after retries", cacheEntries, bi)
			}
			if got.StandingFlows != want.StandingFlows {
				t.Fatalf("cache=%d batch %d: standing %d vs control %d", cacheEntries, bi, got.StandingFlows, want.StandingFlows)
			}
		}
		if !sawFailure {
			t.Fatalf("cache=%d: injector never fired; test exercised nothing", cacheEntries)
		}
	}
}

// TestIngestCtxCancelRollsBack cancels an ingest mid-merge (injected
// latency keeps the merge slow) and verifies the clusterer is left
// exactly as before; the retried ingest matches a never-cancelled run.
func TestIngestCtxCancelRollsBack(t *testing.T) {
	g, ds := streamSetup(t)
	cfg := streamConfig()
	control, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := fault.New(fault.Config{Seed: 5, Points: map[fault.Point]fault.Spec{
		fault.SPQuery: {LatencyProb: 1, Latency: 5 * time.Millisecond},
	}})
	in.SetEnabled(false)
	fcfg := cfg
	fcfg.Fault = in
	slow, err := New(g, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	bs := batches(ds, 2)
	want0, err := control.Ingest(bs[0])
	if err != nil {
		t.Fatal(err)
	}
	in.SetEnabled(true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	_, err = slow.IngestCtx(ctx, bs[0])
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled ingest: err = %v, want context.DeadlineExceeded", err)
	}
	if slow.Batches() != 0 || len(slow.StandingFlows()) != 0 {
		t.Fatalf("state leaked from cancelled ingest: batches=%d standing=%d", slow.Batches(), len(slow.StandingFlows()))
	}
	in.SetEnabled(false)
	got0, err := slow.Ingest(bs[0])
	if err != nil {
		t.Fatal(err)
	}
	if renderClusters(got0.Clusters) != renderClusters(want0.Clusters) {
		t.Fatal("retried ingest diverged from never-cancelled control")
	}
}
