package stream

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/guard"
	"repro/internal/persist"
)

// TestStreamPanicContainedAndRolledBack pins the containment boundary:
// an injected mid-ingest panic surfaces as a typed *guard.PanicError,
// commits nothing, and the same batch retries to output byte-identical
// to a never-faulted control.
func TestStreamPanicContainedAndRolledBack(t *testing.T) {
	g, ds := streamSetup(t)
	cfg := streamConfig()
	control, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := fault.New(fault.Config{Seed: 11, Points: map[fault.Point]fault.Spec{
		fault.IngestPanic: {ErrProb: 1},
	}})
	fcfg := cfg
	fcfg.Fault = in
	faulty, err := New(g, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	bs := batches(ds, 2)

	_, err = faulty.Ingest(bs[0])
	var pe *guard.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicked ingest returned %v, want *guard.PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	if faulty.Batches() != 0 || len(faulty.StandingFlows()) != 0 || faulty.Current() != nil {
		t.Fatalf("panic leaked state: batches=%d standing=%d", faulty.Batches(), len(faulty.StandingFlows()))
	}

	in.SetEnabled(false)
	want, err := control.Ingest(bs[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := faulty.Ingest(bs[0])
	if err != nil {
		t.Fatalf("retry after contained panic: %v", err)
	}
	if renderClusters(got.Clusters) != renderClusters(want.Clusters) {
		t.Fatal("post-panic retry diverged from the never-faulted control")
	}
}

// TestStreamBreakerTripsAndHeals drives the ingest breaker through its
// full lifecycle on an injected clock: trip on consecutive injected
// failures, reject with *guard.QuarantinedError while open (reads keep
// serving the last committed snapshot), then heal through a probe batch
// — after which the clustering matches a never-faulted control's.
func TestStreamBreakerTripsAndHeals(t *testing.T) {
	g, ds := streamSetup(t)
	clk := guard.NewManualClock(time.Unix(1_700_000_000, 0))
	cfg := streamConfig()
	control, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := fault.New(fault.Config{Seed: 13, Points: map[fault.Point]fault.Spec{
		fault.Ingest: {ErrProb: 1},
	}})
	in.SetEnabled(false)
	fcfg := cfg
	fcfg.Fault = in
	fcfg.Breaker = guard.BreakerConfig{TripAfter: 2, Cooldown: 10 * time.Second}
	fcfg.Now = clk.Now
	faulty, err := New(g, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	bs := batches(ds, 2)

	if _, err := faulty.Ingest(bs[0]); err != nil {
		t.Fatal(err)
	}
	in.SetEnabled(true)
	for i := 0; i < 2; i++ {
		if _, err := faulty.Ingest(bs[1]); !fault.IsInjected(err) {
			t.Fatalf("faulted ingest %d returned %v, want injected error", i, err)
		}
	}
	if !faulty.Quarantined() {
		t.Fatal("2 consecutive injected failures must quarantine (TripAfter=2)")
	}
	var qe *guard.QuarantinedError
	if _, err := faulty.Ingest(bs[1]); !errors.As(err, &qe) {
		t.Fatalf("quarantined ingest returned %v, want *guard.QuarantinedError", err)
	}
	if qe.RetryAfter <= 0 {
		t.Fatalf("QuarantinedError.RetryAfter = %v, want > 0", qe.RetryAfter)
	}
	// Reads stay up on the last committed snapshot.
	if cur := faulty.Current(); cur == nil || cur.Batch != 0 {
		t.Fatalf("quarantine took down reads: %+v", faulty.Current())
	}
	// Frozen clock: the cooldown cannot elapse on its own.
	if _, err := faulty.Ingest(bs[1]); !errors.As(err, &qe) {
		t.Fatal("cooldown expired without the clock advancing")
	}

	in.SetEnabled(false)
	clk.Advance(10 * time.Second)
	got, err := faulty.Ingest(bs[1]) // half-open probe
	if err != nil {
		t.Fatalf("probe ingest: %v", err)
	}
	if faulty.Quarantined() {
		t.Fatal("successful probe must close the breaker")
	}
	if faulty.Breaker().Trips() != 1 || faulty.Breaker().Heals() != 1 {
		t.Fatalf("trips/heals = %d/%d, want 1/1", faulty.Breaker().Trips(), faulty.Breaker().Heals())
	}

	for _, b := range bs {
		if _, err := control.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	want := control.Current()
	if renderClusters(got.Clusters) != renderClusters(want.Clusters) {
		t.Fatal("healed clusterer diverged from the never-faulted control")
	}
	if got.StandingFlows != want.StandingFlows {
		t.Fatalf("standing %d vs control %d", got.StandingFlows, want.StandingFlows)
	}
}

// TestStreamRecoveryBypassesBreakerAndFaults pins the replay contract:
// WAL replay neither draws from the fault stream nor reports to the
// breaker, so a clusterer reopened under an armed ErrProb=1 injector
// and an enabled breaker still recovers byte-identically.
func TestStreamRecoveryBypassesBreakerAndFaults(t *testing.T) {
	g, ds := streamSetup(t)
	dir := t.TempDir()
	cfg := streamConfig()
	cfg.Persist = &persist.Options{Dir: dir}
	c, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs := batches(ds, 3)
	var want string
	for _, b := range bs {
		snap, err := c.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		want = renderClusters(snap.Clusters)
	}
	c.Abort() // crash: recovery must replay the whole WAL

	in := fault.New(fault.Config{Seed: 17, Points: map[fault.Point]fault.Spec{
		fault.Ingest:      {ErrProb: 1},
		fault.IngestPanic: {ErrProb: 1},
	}})
	rcfg := cfg
	rcfg.Fault = in
	rcfg.Breaker = guard.BreakerConfig{TripAfter: 1, Cooldown: time.Hour}
	r, err := New(g, rcfg)
	if err != nil {
		t.Fatalf("recovery under armed injector: %v", err)
	}
	defer r.Close()
	if r.Batches() != 3 {
		t.Fatalf("recovered %d batches, want 3", r.Batches())
	}
	if r.Quarantined() {
		t.Fatal("replay reported to the breaker")
	}
	if got := renderClusters(r.Current().Clusters); got != want {
		t.Fatal("recovered clustering diverged from the pre-crash state")
	}
}
