package stream

import (
	"testing"

	"repro/internal/mapgen"
	"repro/internal/mobisim"
	"repro/internal/neat"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

func streamSetup(t testing.TB) (*roadnet.Graph, traj.Dataset) {
	t.Helper()
	g, err := mapgen.Generate(mapgen.Config{
		Name: "st", TargetJunctions: 300, TargetSegments: 420,
		AvgSegLenM: 150, MaxDegree: 6, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, _, err := mobisim.New(g).Simulate(mobisim.DefaultConfig("st", 90, 8))
	if err != nil {
		t.Fatal(err)
	}
	return g, ds
}

func streamConfig() Config {
	return Config{
		Neat: neat.Config{
			Flow:   neat.FlowConfig{Weights: neat.WeightsFlowOnly, MinCard: 3},
			Refine: neat.RefineConfig{Epsilon: 1500, UseELB: true, Bounded: true},
		},
	}
}

func batches(ds traj.Dataset, n int) []traj.Dataset {
	per := len(ds.Trajectories) / n
	var out []traj.Dataset
	for i := 0; i < n; i++ {
		lo, hi := i*per, (i+1)*per
		if i == n-1 {
			hi = len(ds.Trajectories)
		}
		out = append(out, traj.Dataset{Trajectories: ds.Trajectories[lo:hi]})
	}
	return out
}

func TestIngestAccumulates(t *testing.T) {
	g, ds := streamSetup(t)
	c, err := New(g, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	var last Snapshot
	for i, b := range batches(ds, 3) {
		snap, err := c.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Batch != i {
			t.Errorf("batch index = %d, want %d", snap.Batch, i)
		}
		if snap.EvictedFlows != 0 {
			t.Errorf("unbounded window evicted %d flows", snap.EvictedFlows)
		}
		if snap.StandingFlows < last.StandingFlows {
			t.Errorf("standing flows shrank without eviction: %d -> %d",
				last.StandingFlows, snap.StandingFlows)
		}
		// Snapshot clusters partition the standing flows.
		count := 0
		for _, cl := range snap.Clusters {
			count += len(cl.Flows)
		}
		if count != snap.StandingFlows {
			t.Errorf("clusters hold %d flows, standing %d", count, snap.StandingFlows)
		}
		last = snap
	}
	if c.Batches() != 3 {
		t.Errorf("Batches = %d", c.Batches())
	}
	if got := len(c.StandingFlows()); got != last.StandingFlows {
		t.Errorf("StandingFlows() = %d, snapshot said %d", got, last.StandingFlows)
	}
}

func TestWindowEviction(t *testing.T) {
	g, ds := streamSetup(t)
	cfg := streamConfig()
	cfg.Window = 2
	c, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs := batches(ds, 5)
	var flowsPerBatch []int
	for _, b := range bs {
		snap, err := c.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		flowsPerBatch = append(flowsPerBatch, snap.NewFlows)
		// The window holds at most the last 2 batches' flows.
		maxStanding := snap.NewFlows
		if n := len(flowsPerBatch); n >= 2 {
			maxStanding += flowsPerBatch[n-2]
		}
		if snap.StandingFlows > maxStanding {
			t.Errorf("standing %d exceeds window capacity %d", snap.StandingFlows, maxStanding)
		}
	}
	// After 5 batches with window 2, evictions must have happened
	// (every batch contributes at least one flow on this workload).
	if len(c.StandingFlows()) >= sum(flowsPerBatch) {
		t.Error("no flows were evicted")
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestNewValidation(t *testing.T) {
	g, _ := streamSetup(t)
	bad := streamConfig()
	bad.Window = -1
	if _, err := New(g, bad); err == nil {
		t.Error("negative window accepted")
	}
	bad = streamConfig()
	bad.Neat.Refine.Epsilon = 0
	if _, err := New(g, bad); err == nil {
		t.Error("zero epsilon accepted")
	}
	bad = streamConfig()
	bad.Neat.Flow.Beta = 0.1
	if _, err := New(g, bad); err == nil {
		t.Error("bad beta accepted")
	}
}

func TestStreamDeterministic(t *testing.T) {
	g, ds := streamSetup(t)
	run := func() []int {
		c, err := New(g, streamConfig())
		if err != nil {
			t.Fatal(err)
		}
		var counts []int
		for _, b := range batches(ds, 4) {
			snap, err := c.Ingest(b)
			if err != nil {
				t.Fatal(err)
			}
			counts = append(counts, snap.StandingFlows, len(snap.Clusters))
		}
		return counts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at step %d: %v vs %v", i, a, b)
		}
	}
}
