package stream

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/persist"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// durableConfig is streamConfig with a WAL + checkpoints in dir.
func durableConfig(dir string, opts persist.Options) Config {
	cfg := streamConfig()
	opts.Dir = dir
	cfg.Persist = &opts
	return cfg
}

// TestCrashRecoveryByteIdentity is the acceptance sweep: across 24
// seeds varying the checkpoint cadence, window size, segment size, and
// merge mode, a clusterer is killed mid-stream (Abort — no flush, no
// final checkpoint), its WAL is truncated at a seeded kill offset —
// exactly at a record boundary, mid-record, or not at all — and then
// reopened. Recovery must restore exactly the batches the surviving
// log + checkpoints cover (a mid-record cut loses at most that one
// torn record), and after re-ingesting the rest of the stream every
// snapshot must be byte-identical to an uncrashed control's.
func TestCrashRecoveryByteIdentity(t *testing.T) {
	g, ds := streamSetup(t)
	bs := batches(ds, 5)

	// Uncrashed controls, one per window/merge-mode combination; the
	// per-batch canonical renders are the oracle.
	controls := map[string][]string{}
	control := func(window, cacheEntries int) []string {
		key := fmt.Sprintf("%d/%d", window, cacheEntries)
		if r, ok := controls[key]; ok {
			return r
		}
		cfg := streamConfig()
		cfg.Window = window
		cfg.CacheEntries = cacheEntries
		c, err := New(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var renders []string
		for _, b := range bs {
			snap, err := c.Ingest(b)
			if err != nil {
				t.Fatal(err)
			}
			renders = append(renders, renderClusters(snap.Clusters))
		}
		controls[key] = renders
		return renders
	}

	for seed := 0; seed < 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			window := seed % 3
			cacheEntries := 0
			if seed%8 == 7 {
				cacheEntries = -1 // legacy from-scratch merge path
			}
			opts := persist.Options{
				Fsync:           persist.FsyncAlways,
				CheckpointEvery: []int{-1, 1, 2, 3}[seed%4],
			}
			if seed%2 == 1 {
				opts.SegmentBytes = 1 << 12 // force rotation mid-stream
			}
			dir := t.TempDir()
			cfg := durableConfig(dir, opts)
			cfg.Window = window
			cfg.CacheEntries = cacheEntries
			oracle := control(window, cacheEntries)

			crashAt := 1 + seed%(len(bs)-1) // batches ingested before the kill
			c, err := New(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < crashAt; i++ {
				if _, err := c.Ingest(bs[i]); err != nil {
					t.Fatal(err)
				}
			}
			c.Abort() // kill -9: no flush, no final checkpoint

			rep, err := persist.Inspect(dir)
			if err != nil {
				t.Fatal(err)
			}
			fin := rep.Segments[len(rep.Segments)-1]
			if len(fin.Records) == 0 {
				t.Fatalf("final segment %s holds no records", fin.Path)
			}
			last := fin.Records[len(fin.Records)-1]
			ckptSeq := 0
			for _, ck := range rep.Checkpoints {
				if ck.Err == nil {
					ckptSeq = int(ck.Seq)
					break // newest first
				}
			}

			// Place the kill offset: 0 = crash landed exactly after a
			// complete append; 1 = mid-record (torn final record);
			// 2 = at the boundary before the last record (it is lost
			// whole, cleanly).
			cut := seed % 3
			whole := crashAt
			switch cut {
			case 1:
				at := last.Offset + 1 + rng.Int63n(last.Len-1)
				if err := os.Truncate(fin.Path, at); err != nil {
					t.Fatal(err)
				}
				whole = crashAt - 1
			case 2:
				if err := os.Truncate(fin.Path, last.Offset); err != nil {
					t.Fatal(err)
				}
				whole = crashAt - 1
			}
			expected := whole
			if ckptSeq > expected {
				expected = ckptSeq // checkpoint outlives the lost record
			}

			c2, err := New(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			if got := c2.Batches(); got != expected {
				t.Fatalf("cut=%d ckpt=%d: recovered %d batches, want %d", cut, ckptSeq, got, expected)
			}
			rec := c2.PersistStats().Recovery
			if wantTorn := cut == 1; (rec.TornTails > 0) != wantTorn {
				t.Fatalf("cut=%d: recovery reported %d torn tails", cut, rec.TornTails)
			}
			// Re-ingest everything the crash lost plus the rest of the
			// stream; each snapshot must match the uncrashed control
			// byte for byte.
			for i := expected; i < len(bs); i++ {
				snap, err := c2.Ingest(bs[i])
				if err != nil {
					t.Fatal(err)
				}
				if got := renderClusters(snap.Clusters); got != oracle[i] {
					t.Fatalf("batch %d after recovery diverged from control\ngot:\n%s\nwant:\n%s", i, got, oracle[i])
				}
			}
			if err := c2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRecoveredSnapshotMatchesCleanRestart pins the clean-shutdown
// path: Close writes a final checkpoint, and a reopened clusterer
// continues the stream byte-identically — with zero WAL replay, since
// the checkpoint covers the whole log.
func TestRecoveredSnapshotMatchesCleanRestart(t *testing.T) {
	g, ds := streamSetup(t)
	bs := batches(ds, 4)
	dir := t.TempDir()
	cfg := durableConfig(dir, persist.Options{CheckpointEvery: -1})
	cfg.Window = 2

	c, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bs[:2] {
		if _, err := c.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(bs[2]); err == nil {
		t.Fatal("ingest after Close succeeded")
	}

	c2, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Batches() != 2 {
		t.Fatalf("recovered %d batches, want 2", c2.Batches())
	}
	if rec := c2.PersistStats().Recovery; rec.Replayed != 0 {
		t.Fatalf("clean restart replayed %d WAL records, want 0 (checkpoint covers the log)", rec.Replayed)
	}

	ctrl, err := New(g, Config{Neat: cfg.Neat, Window: cfg.Window})
	if err != nil {
		t.Fatal(err)
	}
	var want Snapshot
	for _, b := range bs {
		if want, err = ctrl.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	var got Snapshot
	for _, b := range bs[2:] {
		if got, err = c2.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if renderClusters(got.Clusters) != renderClusters(want.Clusters) {
		t.Fatalf("restarted stream diverged\ngot:\n%s\nwant:\n%s",
			renderClusters(got.Clusters), renderClusters(want.Clusters))
	}
	if got.StandingFlows != want.StandingFlows || got.EvictedFlows != want.EvictedFlows {
		t.Fatalf("accounting diverged: %+v vs %+v", got, want)
	}
}

// TestPersistCacheWarmRestart is the restart-hit-rate pin: with
// PersistCache on, checkpoints carry the warm distance-cache entries,
// and a recovered clusterer re-ingesting the identical batch answers
// every junction-pair query from the imported cache — zero
// shortest-path work. The control leg with PersistCache off recomputes
// (proving the assertion is not vacuous).
func TestPersistCacheWarmRestart(t *testing.T) {
	g, ds := streamSetup(t)
	batch := batches(ds, 3)[0]
	for _, warm := range []bool{true, false} {
		t.Run(fmt.Sprintf("persistcache=%v", warm), func(t *testing.T) {
			dir := t.TempDir()
			cfg := durableConfig(dir, persist.Options{CheckpointEvery: 1, PersistCache: warm})
			cfg.Window = 1
			c, err := New(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			first, err := c.Ingest(batch)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}

			c2, err := New(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			if rec := c2.PersistStats().Recovery; rec.Replayed != 0 {
				t.Fatalf("replayed %d records; replay would warm the cache and void the test", rec.Replayed)
			}
			second, err := c2.Ingest(batch)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := renderClusters(second.Clusters), renderClusters(first.Clusters); got != want {
				t.Fatalf("restarted re-ingest changed the clustering\ngot:\n%s\nwant:\n%s", got, want)
			}
			if warm {
				if second.RefineStats.SPQueries != 0 || second.RefineStats.CacheMisses != 0 {
					t.Fatalf("warm restart recomputed distances: %d SP queries, %d cache misses",
						second.RefineStats.SPQueries, second.RefineStats.CacheMisses)
				}
				if st := c2.CacheStats(); st.Hits == 0 {
					t.Fatal("warm restart reported zero cache hits")
				}
			} else if second.RefineStats.Pairs > 0 &&
				second.RefineStats.ELBPruned < second.RefineStats.Pairs &&
				second.RefineStats.CacheMisses == 0 && second.RefineStats.SPQueries == 0 {
				t.Fatal("cold restart answered from a cache that was not persisted")
			}
		})
	}
}

// TestSnapshotDoesNotAlias is the aliasing regression pin: the
// clusters a Snapshot carries are deep copies, so a caller that
// mutates them — routes, members, fragment points — cannot corrupt the
// clusterer's standing state or any later snapshot.
func TestSnapshotDoesNotAlias(t *testing.T) {
	g, ds := streamSetup(t)
	bs := batches(ds, 3)
	mk := func() *Clusterer {
		c, err := New(g, streamConfig())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	victim, ctrl := mk(), mk()
	for i, b := range bs {
		vs, err := victim.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := ctrl.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderClusters(vs.Clusters), renderClusters(cs.Clusters); got != want {
			t.Fatalf("batch %d: mutation of an earlier snapshot leaked into the clusterer\ngot:\n%s\nwant:\n%s", i, got, want)
		}
		// Vandalize the snapshot as thoroughly as the API exposes.
		for _, cl := range vs.Clusters {
			for _, f := range cl.Flows {
				for l, r := 0, len(f.Route)-1; l < r; l, r = l+1, r-1 {
					f.Route[l], f.Route[r] = f.Route[r], f.Route[l]
				}
				f.Route = append(f.Route, roadnet.SegID(-1))
				for _, m := range f.Members {
					m.Seg = -1
					for fi := range m.Fragments {
						for pi := range m.Fragments[fi].Points {
							m.Fragments[fi].Points[pi] = traj.Location{}
						}
					}
					m.Fragments = nil
				}
				f.Members = f.Members[:0]
			}
			cl.Flows = cl.Flows[:0]
		}
		vs.Clusters = nil
	}
}
