// Package stream implements the online clustering mode the paper
// motivates in §III-C: "the first two phases of NEAT can be performed
// on each newly arrived set of trajectories. The new flow clusters are
// then merged with the available flow clusters to produce compact
// clustering results."
//
// A Clusterer ingests trajectory batches as they arrive, runs Phases
// 1-2 only on the new data, keeps the resulting flow clusters in a
// sliding window of recent batches, and re-runs the cheap Phase 3
// merge over the standing flow set to serve the current clustering.
// Old traffic ages out with the window, so memory stays proportional
// to the window, not to the stream.
package stream

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/distcache"
	"repro/internal/fault"
	"repro/internal/guard"
	"repro/internal/neat"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// ErrClosed is the sentinel a closed Clusterer's Ingest wraps; test
// with errors.Is.
var ErrClosed = errors.New("stream: clusterer is closed")

// Config parameterizes a Clusterer.
type Config struct {
	// Neat carries the clustering parameters for all three phases.
	Neat neat.Config
	// Window is the number of most recent batches whose flows are kept;
	// 0 keeps everything.
	Window int
	// CacheEntries sizes the persistent junction-pair distance cache
	// (internal/distcache) the clusterer keeps across ingests, and
	// selects the Phase 3 merge mode:
	//
	//	0 (default) — cache with distcache.DefaultEntries budget, and
	//	  the ε-graph is maintained incrementally across ingests
	//	  (adjacency rows of surviving flows are kept; only pairs
	//	  involving a new flow are evaluated);
	//	>0 — the same, with an explicit entry budget;
	//	<0 — no cache, and every merge rebuilds the ε-graph from
	//	  scratch (the pre-cache full-merge path; benchmarks compare
	//	  against it).
	//
	// Clustering output is byte-identical in every mode; only the
	// steady-state ingest cost changes.
	CacheEntries int
	// Obs is the metrics registry the clusterer records into: per-batch
	// ingest latency, new/evicted flow counters, and the standing-flow
	// gauge. Nil (the default) disables instrumentation; clustering
	// output is identical either way.
	Obs *obs.Registry
	// Trace enables per-ingest span collection: each Snapshot then
	// carries a "stream.ingest" tree with the batch's Phase 1-2 run and
	// the standing-set merge grafted under it. Off by default.
	Trace bool
	// Fault is an optional fault injector threaded through the whole
	// ingest path: slow/failed ingests (fault.Ingest), shortest-path
	// faults in the Phase 3 merge (unless Neat.Refine.Fault already
	// pins one), and cache pressure on the persistent distance cache.
	// A failed ingest leaves the clusterer exactly as it was — the
	// batch can be retried — and clustering output with a nil or idle
	// injector is byte-identical to an un-faulted run.
	Fault *fault.Injector
	// Persist makes the clusterer durable: every acknowledged batch is
	// appended to a write-ahead log in Persist.Dir, the full state
	// (standing flows, batch index, ε-graph rows, optionally warm
	// distance-cache entries) is checkpointed every
	// Persist.CheckpointEvery batches and on Close, and New recovers by
	// loading the newest valid checkpoint and replaying the WAL tail
	// through the normal ingest path — so a reopened clusterer's
	// snapshots are byte-identical to one that never crashed (it loses
	// at most the torn final record a crash left unsynced). Nil (the
	// default) keeps the clusterer in-memory only. Persist.Obs and
	// Persist.Fault default to Config.Obs and Config.Fault.
	Persist *persist.Options
	// Breaker adds a circuit breaker in front of IngestCtx: infra-class
	// failures (injected faults, contained panics) in consecutive
	// ingests trip it open, after which ingests are rejected with a
	// *guard.QuarantinedError until the cooldown elapses and a probe
	// batch succeeds. Reads (Current, StandingFlows) are unaffected —
	// every failed ingest rolls back fully, so the last committed state
	// stays servable. The zero value (TripAfter 0) disables it.
	Breaker guard.BreakerConfig
	// Now is the clock the breaker reads; nil uses time.Now. Injected
	// in tests so trip/cooldown decisions are deterministic.
	Now guard.Clock
}

// Snapshot is the state of the clustering after an ingestion.
type Snapshot struct {
	// Batch is the 0-based index of the ingested batch.
	Batch int
	// NewFlows is the number of flows the batch contributed.
	NewFlows int
	// EvictedFlows is the number of flows that aged out of the window.
	EvictedFlows int
	// StandingFlows is the size of the flow set after ingest/evict.
	StandingFlows int
	// Clusters is the current clustering of the standing flows.
	Clusters []*neat.TrajectoryCluster
	// RefineStats is the Phase 3 work of this merge. In incremental
	// mode (Config.CacheEntries >= 0) Pairs counts only the pairs this
	// ingest actually evaluated — those involving a new flow — not the
	// full standing-set pair count a from-scratch merge would scan.
	RefineStats neat.RefineStats
	// Timing is this ingest's per-phase breakdown: Phase1/Phase2 from
	// the batch run, Phase3 from the standing-set merge.
	Timing neat.Timing
	// Trace is the ingest's span tree when Config.Trace is on; nil
	// otherwise.
	Trace *obs.Span
}

// Clusterer maintains NEAT clustering over a trajectory stream. Not
// safe for concurrent use; callers serialize Ingest.
type Clusterer struct {
	g        *roadnet.Graph
	pipeline *neat.Pipeline
	cfg      Config

	// Every ingest runs the Phases 1-2 plan over the new batch, then
	// the Phase 3 merge over the standing flow set (§III-C's
	// incremental mode). The merge is either the maintained ε-graph
	// (eps, the default) or a from-scratch FromFlows plan (mergePlan,
	// when Config.CacheEntries < 0).
	ingestPlan *neat.Plan
	mergePlan  *neat.Plan
	eps        *neat.EpsGraph

	// cache persists junction-pair network distances across ingests;
	// nil when Config.CacheEntries < 0.
	cache     *distcache.Cache
	refineCfg neat.RefineConfig // Neat.Refine with the cache attached

	// store is the durability layer (nil without Config.Persist);
	// lastCkpt is the batch index the newest checkpoint covers, and
	// recovering flags that IngestCtx is replaying the WAL (so it must
	// not re-append records or draw ingest-fault decisions).
	store      *persist.Store
	lastCkpt   int
	recovering bool

	// current is the last committed snapshot, published atomically
	// after each commit so concurrent readers observe the clustering
	// without synchronizing with Ingest (see Current).
	current atomic.Pointer[Snapshot]

	// breaker guards the ingest path (nil unless Config.Breaker is
	// enabled); replayed WAL batches bypass it — they were committed.
	breaker *guard.Breaker

	batch    int
	standing []flowEntry
	closed   bool
	// epsDirty flags that the maintained ε-graph no longer mirrors the
	// standing set (a merge failed after eviction had been applied to
	// the graph); the next merge rebuilds it from empty over the full
	// standing set, which is byte-identical to incremental maintenance
	// (see neat.EpsGraph).
	epsDirty bool

	// Pre-resolved metric handles; all nil without a registry.
	m streamMetrics
}

// streamMetrics are the streaming-mode series.
type streamMetrics struct {
	batches   *obs.Counter
	newFlows  *obs.Counter
	evictions *obs.Counter
	standing  *obs.Gauge
	ingest    *obs.Histogram
}

// ingestBuckets cover per-batch ingest latencies from sub-millisecond
// micro-batches to multi-second windows (seconds).
var ingestBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10, 30}

type flowEntry struct {
	flow  *neat.FlowCluster
	batch int
}

// New creates a Clusterer over g.
func New(g *roadnet.Graph, cfg Config) (*Clusterer, error) {
	if cfg.Window < 0 {
		return nil, fmt.Errorf("stream: window must be non-negative, got %d", cfg.Window)
	}
	if err := cfg.Neat.Validate(); err != nil {
		return nil, err
	}
	ingestPlan, err := neat.NewPlan(cfg.Neat, neat.LevelFlow, neat.FromDataset, neat.Exec{})
	if err != nil {
		return nil, err
	}
	var cache *distcache.Cache
	if cfg.CacheEntries >= 0 {
		cache = distcache.New(cfg.CacheEntries)
		cache.Instrument(cfg.Obs)
		cache.InjectFaults(cfg.Fault)
	}
	cfg.Fault.Instrument(cfg.Obs)
	refineCfg := cfg.Neat.Refine
	refineCfg.Cache = cache
	if refineCfg.Fault == nil {
		refineCfg.Fault = cfg.Fault
	}
	cfg.Neat.Refine = refineCfg
	var mergePlan *neat.Plan
	var eps *neat.EpsGraph
	if cache != nil {
		eps, err = neat.NewEpsGraph(g, refineCfg)
	} else {
		mergePlan, err = neat.NewPlan(cfg.Neat, neat.LevelOpt, neat.FromFlows, neat.Exec{})
	}
	if err != nil {
		return nil, err
	}
	pipeline := neat.NewPipeline(g)
	pipeline.Instrument(cfg.Obs)
	pipeline.EnableTracing(cfg.Trace)
	c := &Clusterer{
		g:          g,
		pipeline:   pipeline,
		cfg:        cfg,
		ingestPlan: ingestPlan,
		mergePlan:  mergePlan,
		eps:        eps,
		cache:      cache,
		refineCfg:  refineCfg,
		m: streamMetrics{
			batches:   cfg.Obs.Counter("stream_batches_total"),
			newFlows:  cfg.Obs.Counter("stream_new_flows_total"),
			evictions: cfg.Obs.Counter("stream_evicted_flows_total"),
			standing:  cfg.Obs.Gauge("stream_standing_flows"),
			ingest:    cfg.Obs.Histogram("stream_ingest_seconds", ingestBuckets),
		},
	}
	if cfg.Breaker.TripAfter > 0 {
		c.breaker = guard.NewBreaker(cfg.Breaker, cfg.Now)
	}
	if cfg.Persist != nil {
		o := *cfg.Persist
		if o.Obs == nil {
			o.Obs = cfg.Obs
		}
		if o.Fault == nil {
			o.Fault = cfg.Fault
		}
		store, err := persist.Open(o)
		if err != nil {
			return nil, fmt.Errorf("stream: open persistence: %w", err)
		}
		c.store = store
		if err := c.recover(); err != nil {
			store.Close()
			return nil, fmt.Errorf("stream: recover: %w", err)
		}
	}
	return c, nil
}

// recover restores the clusterer from the newest valid checkpoint and
// replays the WAL tail through the normal ingest path. Replayed
// batches re-run Phases 1-3 exactly as they did originally, so the
// recovered standing set and ε-graph are byte-identical to an
// uncrashed clusterer's — not an approximation loaded from disk.
func (c *Clusterer) recover() error {
	if seq, payload, ok := c.store.Checkpoint(); ok {
		st, err := persist.DecodeStreamState(payload)
		if err != nil {
			return fmt.Errorf("checkpoint seq %d: %w", seq, err)
		}
		if err := c.restoreState(st); err != nil {
			return fmt.Errorf("checkpoint seq %d: %w", seq, err)
		}
	}
	c.recovering = true
	defer func() { c.recovering = false }()
	return c.store.Replay(uint64(c.batch), func(seq uint64, batch traj.Dataset) error {
		if seq != uint64(c.batch) {
			return fmt.Errorf("wal gap: expected batch %d, log has %d", c.batch, seq)
		}
		_, err := c.IngestCtx(context.Background(), batch)
		return err
	})
}

// restoreState loads a decoded checkpoint into the clusterer.
func (c *Clusterer) restoreState(st persist.StreamState) error {
	c.standing = c.standing[:0]
	flows := make([]*neat.FlowCluster, len(st.Entries))
	for i, e := range st.Entries {
		c.standing = append(c.standing, flowEntry{flow: e.Flow, batch: e.Batch})
		flows[i] = e.Flow
	}
	c.batch = st.Batch
	c.lastCkpt = st.Batch
	if c.eps != nil {
		if st.Adjacency != nil {
			eg, err := neat.RestoreEpsGraph(c.g, c.refineCfg, flows, st.Adjacency)
			if err != nil {
				return err
			}
			c.eps = eg
		} else {
			// The checkpoint was taken while the graph was dirty; the
			// next merge rebuilds it over the full standing set.
			c.epsDirty = true
		}
	}
	if c.cache != nil && len(st.Cache) > 0 && st.CacheScope == neat.CacheScope(c.g, c.cfg.Neat.Refine) {
		c.cache.SetScope(st.CacheScope)
		entries := make([]distcache.Entry, len(st.Cache))
		for i, e := range st.Cache {
			entries[i] = distcache.Entry{Key: e.Key, Dist: e.Dist, Bound: e.Bound}
		}
		c.cache.Import(entries)
	}
	return nil
}

// Ingest processes one batch: Phases 1-2 over the batch only, window
// eviction, then Phase 3 over the standing flow set.
func (c *Clusterer) Ingest(batch traj.Dataset) (Snapshot, error) {
	return c.IngestCtx(context.Background(), batch)
}

// IngestCtx is Ingest with cooperative cancellation: the context is
// threaded through the batch run and the standing-set merge. On any
// failure — cancellation, deadline, an injected fault, or a contained
// panic — the clusterer's state is exactly as it was before the call
// (nothing is committed, the batch index does not advance), so the
// same batch can be retried; a later successful retry produces output
// byte-identical to a never-failed run.
//
// With Config.Breaker enabled, consecutive infra-class failures
// (injected faults, panics) trip the breaker: further calls fail fast
// with a *guard.QuarantinedError until the cooldown elapses and a
// probe batch succeeds. Cancellation and validation failures never
// trip it — they are the caller's condition, not the pipeline's.
func (c *Clusterer) IngestCtx(ctx context.Context, batch traj.Dataset) (Snapshot, error) {
	if c.closed {
		return Snapshot{}, fmt.Errorf("stream: batch %d: %w", c.batch, ErrClosed)
	}
	if c.breaker != nil && !c.recovering {
		if d, retry := c.breaker.Allow(); d == guard.Reject {
			return Snapshot{}, fmt.Errorf("stream: batch %d: %w", c.batch,
				&guard.QuarantinedError{Session: "stream", RetryAfter: retry})
		}
	}
	snap, err := c.ingest(ctx, batch)
	if c.breaker != nil && !c.recovering {
		var pe *guard.PanicError
		if fault.IsInjected(err) || errors.As(err, &pe) {
			c.breaker.Failure()
		} else {
			// Success and caller-class failures alike clear the run: only
			// infra faults may trip, and a pending probe slot must always
			// resolve so the breaker cannot wedge half-open.
			c.breaker.Success()
		}
	}
	return snap, err
}

// Quarantined reports whether the breaker currently rejects ingests.
func (c *Clusterer) Quarantined() bool {
	return c.breaker != nil && c.breaker.Quarantined()
}

// Breaker exposes the ingest circuit breaker; nil when disabled.
func (c *Clusterer) Breaker() *guard.Breaker { return c.breaker }

// ingest is the containment boundary: a panic anywhere in the batch
// run, merge, or durability path is caught here, the pre-batch state
// restored (the ε-graph conservatively marked dirty — the next merge
// rebuilds it), and the panic surfaced as a typed *guard.PanicError.
func (c *Clusterer) ingest(ctx context.Context, batch traj.Dataset) (snap Snapshot, err error) {
	start := time.Now()
	prevStanding := append([]flowEntry(nil), c.standing...)
	prevBatch := c.batch
	defer func() {
		if r := recover(); r != nil {
			c.standing = prevStanding
			c.batch = prevBatch
			if c.eps != nil {
				c.epsDirty = true
			}
			snap = Snapshot{}
			err = fmt.Errorf("stream: batch %d: %w", prevBatch,
				&guard.PanicError{Value: r, Stack: debug.Stack()})
		}
	}()
	if !c.recovering {
		// WAL replay must not draw from the fault stream: the replayed
		// ingests already "happened", and skipping the draws keeps the
		// injector's deterministic sequence aligned with live traffic.
		c.cfg.Fault.Sleep(fault.Ingest)
		if err := c.cfg.Fault.Inject(fault.Ingest); err != nil {
			return Snapshot{}, fmt.Errorf("stream: batch %d: %w", c.batch, err)
		}
		if c.cfg.Fault.Hit(fault.IngestPanic) {
			panic(fmt.Sprintf("fault: injected %s", fault.IngestPanic))
		}
	}
	var root *obs.Span
	if c.cfg.Trace {
		root = obs.StartSpan("stream.ingest")
		root.Annotate("batch", c.batch)
	}
	res, err := c.pipeline.RunPlanCtx(ctx, c.ingestPlan, neat.Input{Dataset: batch})
	if err != nil {
		// Nothing has been committed yet; state is untouched.
		return Snapshot{}, fmt.Errorf("stream: batch %d: %w", c.batch, err)
	}
	root.Adopt(res.Trace)
	snap = Snapshot{Batch: c.batch, NewFlows: len(res.Flows), Timing: res.Timing}
	// The merge below can fail (cancellation, injected SP faults);
	// prevStanding/prevBatch — captured at entry — roll everything back.
	// Evict flows older than the window. The standing list is in batch
	// order (each ingest appends), so the cutoff removes a prefix —
	// which is exactly the edit the maintained ε-graph supports.
	evicted := 0
	if c.cfg.Window > 0 {
		cutoff := c.batch - c.cfg.Window + 1
		for evicted < len(c.standing) && c.standing[evicted].batch < cutoff {
			evicted++
		}
	}
	if evicted > 0 {
		c.standing = append(c.standing[:0], c.standing[evicted:]...)
	}
	snap.EvictedFlows = evicted
	for _, f := range res.Flows {
		c.standing = append(c.standing, flowEntry{flow: f, batch: c.batch})
	}
	c.batch++
	snap.StandingFlows = len(c.standing)

	if c.eps != nil {
		if err := c.mergeIncremental(ctx, &snap, res.Flows, evicted, root); err != nil {
			c.standing = prevStanding
			c.batch = prevBatch
			// The graph may have already dropped the evicted prefix; it
			// no longer mirrors the restored standing set.
			c.epsDirty = true
			return Snapshot{}, fmt.Errorf("stream: merge after batch %d: %w", snap.Batch, err)
		}
	} else {
		flows := make([]*neat.FlowCluster, len(c.standing))
		for i, e := range c.standing {
			flows[i] = e.flow
		}
		mres, err := c.pipeline.RunPlanCtx(ctx, c.mergePlan, neat.Input{Flows: flows})
		if err != nil {
			c.standing = prevStanding
			c.batch = prevBatch
			return Snapshot{}, fmt.Errorf("stream: merge after batch %d: %w", snap.Batch, err)
		}
		root.Adopt(mres.Trace)
		snap.Clusters = mres.Clusters
		snap.RefineStats = mres.RefineStats
		snap.Timing.Phase3 = mres.Timing.Phase3
	}
	// The batch is committed in memory; make it durable before
	// acknowledging. An append failure (disk full, injected fault)
	// rolls the commit back so the caller can retry — the WAL never
	// acknowledges a batch the log does not hold.
	if c.store != nil && !c.recovering {
		if err := c.store.AppendBatch(uint64(snap.Batch), batch); err != nil {
			c.standing = prevStanding
			c.batch = prevBatch
			if c.eps != nil {
				c.epsDirty = true
			}
			return Snapshot{}, fmt.Errorf("stream: wal append batch %d: %w", snap.Batch, err)
		}
	}
	// Hand the caller a deep copy: snapshots must never alias the live
	// flows the clusterer keeps merging (see TestSnapshotDoesNotAlias).
	snap.Clusters = neat.CloneClusters(snap.Clusters)
	if c.store != nil && !c.recovering {
		if every := c.store.CheckpointEvery(); every > 0 && c.batch-c.lastCkpt >= every {
			// Best-effort: a failed checkpoint only delays compaction
			// (recovery replays more WAL); the error is surfaced in
			// PersistStats().LastCheckpointError.
			c.writeCheckpoint()
		}
	}
	root.End()
	snap.Trace = root
	c.m.batches.Inc()
	c.m.newFlows.Add(int64(snap.NewFlows))
	c.m.evictions.Add(int64(snap.EvictedFlows))
	c.m.standing.Set(float64(snap.StandingFlows))
	c.m.ingest.ObserveDuration(time.Since(start))
	pub := snap
	c.current.Store(&pub)
	return snap, nil
}

// Current returns the most recently committed snapshot, or nil before
// the first one. It never blocks: the pointer is published atomically
// after each commit and the snapshot's clusters are already deep-copied
// off the live standing set, so readers can hold it across later
// ingests (treat it as read-only — it is shared with every other
// Current caller). A failed or rolled-back ingest never publishes.
func (c *Clusterer) Current() *Snapshot { return c.current.Load() }

// Close marks the clusterer closed: subsequent Ingest calls fail with
// an error wrapping ErrClosed. With durability enabled it also writes
// a final checkpoint covering every ingested batch and closes the
// store (flushing the WAL), and can then fail; without Config.Persist
// it never does. Close is idempotent, and read-only accessors
// (StandingFlows, CacheStats, Batches) keep working on the final
// state.
func (c *Clusterer) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.store == nil {
		return nil
	}
	var err error
	if c.batch > c.lastCkpt {
		err = c.writeCheckpoint()
	}
	if cerr := c.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abort closes the clusterer without flushing or checkpointing — the
// process-internal equivalent of kill -9, for crash-recovery tests.
// Whatever the WAL holds on disk (plus the OS page cache for
// same-process reopens) is what recovery will see.
func (c *Clusterer) Abort() {
	c.closed = true
	if c.store != nil {
		c.store.Abort()
	}
}

// PersistStats snapshots the durability layer's counters; the zero
// Stats when persistence is disabled.
func (c *Clusterer) PersistStats() persist.Stats {
	if c.store == nil {
		return persist.Stats{}
	}
	return c.store.Stats()
}

// writeCheckpoint persists the full clusterer state as of the current
// batch index.
func (c *Clusterer) writeCheckpoint() error {
	payload := persist.EncodeStreamState(c.checkpointState())
	if err := c.store.WriteCheckpoint(uint64(c.batch), payload); err != nil {
		return err
	}
	c.lastCkpt = c.batch
	return nil
}

// checkpointState assembles the serializable clusterer state: the
// standing flows with their batch indices, the maintained ε-graph's
// adjacency rows (omitted while dirty — recovery then rebuilds the
// graph), and, when Options.PersistCache is on, the warmest
// distance-cache entries with their scope.
func (c *Clusterer) checkpointState() persist.StreamState {
	st := persist.StreamState{Batch: c.batch}
	if len(c.standing) > 0 {
		st.Entries = make([]persist.StreamEntry, len(c.standing))
		for i, e := range c.standing {
			st.Entries[i] = persist.StreamEntry{Batch: e.batch, Flow: e.flow}
		}
	}
	if c.eps != nil && !c.epsDirty {
		st.Adjacency = c.eps.Adjacency()
	}
	if on, limit := c.store.PersistCache(); on && c.cache != nil {
		st.CacheScope = c.cache.Scope()
		entries := c.cache.Export(limit)
		if len(entries) > 0 {
			st.Cache = make([]persist.CacheEntry, len(entries))
			for i, e := range entries {
				st.Cache[i] = persist.CacheEntry{Key: e.Key, Dist: e.Dist, Bound: e.Bound}
			}
		}
	}
	return st
}

// mergeIncremental is the default Phase 3 merge: instead of rebuilding
// the ε-graph over the whole standing set, it drops the evicted prefix
// from the maintained graph, evaluates only the pairs that involve a
// flow from this batch (their distances mostly hitting the persistent
// cache), and re-runs the deterministic DBSCAN pass. The result is
// byte-identical to the from-scratch merge — see neat.EpsGraph.
//
// When a previous merge failed mid-edit (epsDirty), the maintained
// graph is rebuilt from empty over the full standing set first —
// structurally the same scan a from-scratch build runs, so the
// recovered graph is byte-identical to an incrementally maintained one
// (that ingest's Pairs counter covers the whole standing set).
func (c *Clusterer) mergeIncremental(ctx context.Context, snap *Snapshot, newFlows []*neat.FlowCluster, evicted int, root *obs.Span) error {
	var stats neat.RefineStats
	if c.epsDirty {
		fresh, err := neat.NewEpsGraph(c.g, c.refineCfg)
		if err != nil {
			return err
		}
		flows := make([]*neat.FlowCluster, len(c.standing))
		for i, e := range c.standing {
			flows[i] = e.flow
		}
		if stats, err = fresh.Extend(ctx, flows); err != nil {
			return err
		}
		c.eps = fresh
		c.epsDirty = false
	} else {
		c.eps.RemovePrefix(evicted)
		var err error
		if stats, err = c.eps.Extend(ctx, newFlows); err != nil {
			return err
		}
	}
	clusters, clusterTime, err := c.eps.Cluster()
	if err != nil {
		return err
	}
	stats.ClusterTime = clusterTime
	snap.Clusters = clusters
	snap.RefineStats = stats
	snap.Timing.Phase3 = stats.GraphTime + stats.ClusterTime
	if root != nil {
		// Synthesize the merge span the FromFlows plan would have
		// produced, so traced snapshots keep the same shape in both
		// merge modes.
		m := obs.StartSpan("neat.merge")
		m.Annotate("level", neat.LevelOpt)
		m.Annotate("incremental", true)
		sp := m.StartChild("phase3.refine")
		neat.AnnotateRefineSpan(sp, c.refineCfg, stats, len(clusters))
		sp.End()
		m.End()
		root.Adopt(m)
	}
	return nil
}

// CacheStats snapshots the persistent distance cache's counters; the
// zero Stats when the cache is disabled (Config.CacheEntries < 0).
func (c *Clusterer) CacheStats() distcache.Stats {
	return c.cache.CacheStats()
}

// StandingFlows returns the current flow set (most recent last);
// callers must not modify the flows.
func (c *Clusterer) StandingFlows() []*neat.FlowCluster {
	out := make([]*neat.FlowCluster, len(c.standing))
	for i, e := range c.standing {
		out[i] = e.flow
	}
	return out
}

// Batches returns how many batches have been ingested.
func (c *Clusterer) Batches() int { return c.batch }
