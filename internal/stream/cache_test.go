package stream

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/neat"
)

// renderClusters canonicalizes a clustering structurally — cluster
// order, flow order within each cluster, and every flow's route — so
// clusterings from two different Clusterer instances (whose flow
// pointers differ) can be compared byte for byte.
func renderClusters(cs []*neat.TrajectoryCluster) string {
	var b strings.Builder
	for ci, c := range cs {
		fmt.Fprintf(&b, "cluster %d:", ci)
		for _, f := range c.Flows {
			b.WriteString(" [")
			for _, seg := range f.Route {
				fmt.Fprintf(&b, "%d,", seg)
			}
			b.WriteString("]")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestIncrementalMatchesLegacy is the streaming differential: one
// clusterer using the persistent cache + maintained ε-graph (the
// default) and one on the legacy from-scratch merge ingest the same
// batches, and every snapshot's clustering must match exactly — across
// window sizes (1 forces full churn every ingest) and Phase 3 worker
// counts (the legacy side then uses the batched parallel builder).
func TestIncrementalMatchesLegacy(t *testing.T) {
	g, ds := streamSetup(t)
	for _, window := range []int{0, 1, 2, 3} {
		for _, workers := range []int{0, 2} {
			t.Run(fmt.Sprintf("window=%d/workers=%d", window, workers), func(t *testing.T) {
				mk := func(cacheEntries int) *Clusterer {
					cfg := streamConfig()
					cfg.Window = window
					cfg.Neat.Refine.Workers = workers
					cfg.CacheEntries = cacheEntries
					c, err := New(g, cfg)
					if err != nil {
						t.Fatal(err)
					}
					return c
				}
				inc, leg := mk(0), mk(-1)
				for i, b := range batches(ds, 5) {
					si, err := inc.Ingest(b)
					if err != nil {
						t.Fatal(err)
					}
					sl, err := leg.Ingest(b)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := renderClusters(si.Clusters), renderClusters(sl.Clusters); got != want {
						t.Fatalf("batch %d: incremental clustering diverged from legacy\nincremental:\n%s\nlegacy:\n%s", i, got, want)
					}
					if si.StandingFlows != sl.StandingFlows || si.EvictedFlows != sl.EvictedFlows || si.NewFlows != sl.NewFlows {
						t.Fatalf("batch %d: accounting diverged (%+v vs %+v)", i, si, sl)
					}
				}
			})
		}
	}
}

// TestReingestIdenticalBatch is the metamorphic pin from the issue:
// with window 1, re-ingesting the identical batch must reproduce the
// identical snapshot while performing ~zero new shortest-path work —
// every junction-pair distance is already in the persistent cache,
// even though all the flows themselves were just evicted.
func TestReingestIdenticalBatch(t *testing.T) {
	g, ds := streamSetup(t)
	cfg := streamConfig()
	cfg.Window = 1
	c, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := batches(ds, 3)[0]
	first, err := c.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderClusters(second.Clusters), renderClusters(first.Clusters); got != want {
		t.Fatalf("re-ingest changed the clustering\nfirst:\n%s\nsecond:\n%s", want, got)
	}
	if second.NewFlows != first.NewFlows || second.StandingFlows != first.StandingFlows {
		t.Fatalf("re-ingest changed flow accounting: %+v vs %+v", second, first)
	}
	if second.EvictedFlows != first.NewFlows {
		t.Fatalf("window 1 should have evicted all %d prior flows, evicted %d", first.NewFlows, second.EvictedFlows)
	}
	if second.RefineStats.SPQueries != 0 || second.RefineStats.CacheMisses != 0 {
		t.Fatalf("re-ingest recomputed distances: %d SP queries, %d cache misses",
			second.RefineStats.SPQueries, second.RefineStats.CacheMisses)
	}
	if first.RefineStats.CacheMisses == 0 && first.RefineStats.Pairs > 0 &&
		first.RefineStats.ELBPruned < first.RefineStats.Pairs {
		t.Fatal("cold ingest reported no cache misses")
	}
}

// TestEvictionInvalidatesRows pins that a flow aging out of the window
// truly leaves the ε-graph: after churning through disjoint batches
// with window 1, each snapshot's clustering contains exactly the
// current batch's flows and matches a from-scratch Phase 3 run over
// them (no stale adjacency row can survive and reattach old flows).
func TestEvictionInvalidatesRows(t *testing.T) {
	g, ds := streamSetup(t)
	cfg := streamConfig()
	cfg.Window = 1
	c, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches(ds, 4) {
		snap, err := c.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		if snap.StandingFlows != snap.NewFlows {
			t.Fatalf("batch %d: window 1 left %d standing for %d new", i, snap.StandingFlows, snap.NewFlows)
		}
		// Oracle: Phase 3 from scratch over exactly the standing flows.
		want, _, err := neat.RefineFlows(g, c.StandingFlows(), streamConfig().Neat.Refine)
		if err != nil {
			t.Fatal(err)
		}
		if got, wantS := renderClusters(snap.Clusters), renderClusters(want); got != wantS {
			t.Fatalf("batch %d: maintained clustering differs from oracle\ngot:\n%s\nwant:\n%s", i, got, wantS)
		}
	}
}

// TestCacheStatsAccessor checks the cache surface: populated in the
// default mode, zero when disabled.
func TestCacheStatsAccessor(t *testing.T) {
	g, ds := streamSetup(t)
	c, err := New(g, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest(batches(ds, 2)[0]); err != nil {
		t.Fatal(err)
	}
	st := c.CacheStats()
	if st.Capacity == 0 {
		t.Fatal("default mode reported no cache capacity")
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("ingest consulted the cache zero times")
	}

	cfg := streamConfig()
	cfg.CacheEntries = -1
	off, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := off.Ingest(batches(ds, 2)[0]); err != nil {
		t.Fatal(err)
	}
	if st := off.CacheStats(); st.Capacity != 0 || st.Hits+st.Misses != 0 {
		t.Fatalf("disabled cache reported stats %+v", st)
	}
}
