package stream

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestCurrentPublishesCommittedSnapshots pins the lock-free read path:
// Current is nil before the first commit, tracks each committed batch
// afterwards, and a failed ingest never publishes. Concurrent readers
// run against a live ingest (meaningful under -race).
func TestCurrentPublishesCommittedSnapshots(t *testing.T) {
	g, ds := streamSetup(t)
	c, err := New(g, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Current() != nil {
		t.Fatal("Current non-nil before any ingest")
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if sn := c.Current(); sn != nil && len(sn.Clusters) > 0 {
					_ = sn.Clusters[0].Cardinality()
				}
			}
		}()
	}
	for i, b := range batches(ds, 3) {
		snap, err := c.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		cur := c.Current()
		if cur == nil || cur.Batch != snap.Batch || cur.StandingFlows != snap.StandingFlows {
			t.Fatalf("batch %d: Current = %+v, want the committed snapshot %+v", i, cur, snap)
		}
	}
	close(stop)
	wg.Wait()
	before := c.Current()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.IngestCtx(ctx, batches(ds, 3)[0]); err == nil {
		t.Fatal("canceled ingest succeeded")
	}
	if c.Current() != before {
		t.Error("failed ingest published a snapshot")
	}
}

// TestSnapshotTimingAndTrace covers the per-ingest observability the
// batch Result always had: each Snapshot carries the phase breakdown,
// and with Config.Trace on, a span tree with the batch run and the
// standing-set merge grafted under one ingest root.
func TestSnapshotTimingAndTrace(t *testing.T) {
	g, ds := streamSetup(t)
	cfg := streamConfig()
	cfg.Trace = true
	c, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches(ds, 2) {
		snap, err := c.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Timing.Phase1 <= 0 {
			t.Errorf("batch %d: Timing.Phase1 = %v", i, snap.Timing.Phase1)
		}
		if snap.Timing.Phase3 <= 0 {
			t.Errorf("batch %d: Timing.Phase3 = %v", i, snap.Timing.Phase3)
		}
		if snap.Trace == nil {
			t.Fatalf("batch %d: no trace despite Config.Trace", i)
		}
		if snap.Trace.Name() != "stream.ingest" {
			t.Errorf("batch %d: root span %q", i, snap.Trace.Name())
		}
		if snap.Trace.Find("neat.run") == nil {
			t.Errorf("batch %d: ingest trace lacks the batch run tree", i)
		}
		if snap.Trace.Find("neat.merge") == nil {
			t.Errorf("batch %d: ingest trace lacks the merge tree", i)
		}
		if snap.Trace.Find("phase2.flow_clusters") == nil || snap.Trace.Find("phase3.refine") == nil {
			t.Errorf("batch %d: ingest trace lacks phase spans", i)
		}
	}
}

// TestSnapshotTraceOffByDefault pins the zero-cost default.
func TestSnapshotTraceOffByDefault(t *testing.T) {
	g, ds := streamSetup(t)
	c, err := New(g, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Ingest(batches(ds, 2)[0])
	if err != nil {
		t.Fatal(err)
	}
	if snap.Trace != nil {
		t.Error("trace collected without Config.Trace")
	}
	if snap.Timing.Total() <= 0 {
		t.Error("timing missing without tracing")
	}
}

// TestStreamShardedMatchesUnsharded runs the same batch sequence with
// and without road-network sharding and demands identical clusterings
// (the stage engine's determinism contract, at the streaming layer).
func TestStreamShardedMatchesUnsharded(t *testing.T) {
	g, ds := streamSetup(t)
	plain, err := New(g, streamConfig())
	if err != nil {
		t.Fatal(err)
	}
	scfg := streamConfig()
	scfg.Neat.Shards = 4
	sharded, err := New(g, scfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches(ds, 3) {
		a, err := plain.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sharded.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		if a.NewFlows != s.NewFlows || a.StandingFlows != s.StandingFlows {
			t.Fatalf("batch %d: flow counts diverge: %d/%d vs %d/%d",
				i, a.NewFlows, a.StandingFlows, s.NewFlows, s.StandingFlows)
		}
		if len(a.Clusters) != len(s.Clusters) {
			t.Fatalf("batch %d: %d clusters unsharded, %d sharded", i, len(a.Clusters), len(s.Clusters))
		}
		for ci := range a.Clusters {
			af, sf := a.Clusters[ci].Flows, s.Clusters[ci].Flows
			if len(af) != len(sf) {
				t.Fatalf("batch %d cluster %d: sizes %d vs %d", i, ci, len(af), len(sf))
			}
			for fi := range af {
				if fmt.Sprint(af[fi].Route) != fmt.Sprint(sf[fi].Route) {
					t.Fatalf("batch %d cluster %d flow %d: routes diverge", i, ci, fi)
				}
			}
		}
	}
}

// TestNewValidatesWholeConfig pins that construction rejects any
// invalid part of the neat config, including the sharding knob.
func TestNewValidatesWholeConfig(t *testing.T) {
	g, _ := streamSetup(t)
	cfg := streamConfig()
	cfg.Neat.Shards = -2
	if _, err := New(g, cfg); err == nil {
		t.Error("negative shard count accepted")
	}
	cfg = streamConfig()
	cfg.Neat.Refine.Epsilon = -5
	if _, err := New(g, cfg); err == nil {
		t.Error("invalid refine config accepted")
	}
	cfg = streamConfig()
	cfg.Neat.Flow.Beta = 0.1
	if _, err := New(g, cfg); err == nil {
		t.Error("invalid flow config accepted")
	}
	cfg = streamConfig()
	cfg.Neat.Shards = 3
	if _, err := New(g, cfg); err != nil {
		t.Errorf("valid sharded config rejected: %v", err)
	}
}
