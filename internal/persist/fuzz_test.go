package persist

import (
	"bytes"
	"testing"
)

// fuzzSegment builds a valid segment image from framed records, for
// seed corpus entries.
func fuzzSegment(bodies ...[]byte) []byte {
	b := []byte(segMagic)
	for i, body := range bodies {
		b = frameRecord(b, uint64(i), body)
	}
	return b
}

// FuzzWALReplay drives the segment scanner with arbitrary bytes: it
// must never panic or over-allocate, and whatever valid records it
// extracts must survive a re-frame + re-scan round trip (the framing
// is self-consistent). Torn and corrupt tails are reported, not
// crashed on — the property recovery's torn-tail tolerance rests on.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(fuzzSegment(EncodeDataset(testBatch(0))))
	whole := fuzzSegment(EncodeDataset(testBatch(1)), EncodeDataset(testBatch(2)))
	f.Add(whole)
	f.Add(whole[:len(whole)-5])      // torn tail
	f.Add(append(whole, 1, 2, 3, 4)) // garbage after valid frames
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, res := scanSegment(data, true)
		if res.Valid < 0 || res.Valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", res.Valid, len(data))
		}
		if res.Torn != (res.Valid < int64(len(data))) {
			t.Fatalf("torn=%v but valid=%d of %d", res.Torn, res.Valid, len(data))
		}
		// Re-frame the extracted records; the scanner must read back
		// exactly what the framer wrote.
		out := []byte(segMagic)
		for _, r := range recs {
			out = frameRecord(out, r.Seq, r.Body)
		}
		recs2, res2 := scanSegment(out, true)
		if res2.Torn || len(recs2) != len(recs) {
			t.Fatalf("re-scan of re-framed records: %d vs %d, torn=%v", len(recs2), len(recs), res2.Torn)
		}
		for i := range recs {
			if recs2[i].Seq != recs[i].Seq || !bytes.Equal(recs2[i].Body, recs[i].Body) {
				t.Fatalf("record %d diverged after re-frame", i)
			}
		}
	})
}

// FuzzCheckpointDecode drives the checkpoint framing and both payload
// codecs with arbitrary bytes: reject, never crash; and a payload that
// decodes must re-encode to the identical bytes (idempotence, the
// property that makes checkpoint contents canonical).
func FuzzCheckpointDecode(f *testing.F) {
	stream := EncodeStreamState(StreamState{
		Batch:      3,
		Entries:    []StreamEntry{{Batch: 2, Flow: testFlow(5, 6)}},
		Adjacency:  [][]int{{}},
		CacheScope: "scope",
		Cache:      []CacheEntry{{Key: 9, Dist: 10, Bound: 11}},
	})
	server := EncodeServerState(ServerState{Batches: 2, Trajs: testBatch(4).Trajectories})
	f.Add(encodeCheckpoint(3, stream))
	f.Add(encodeCheckpoint(2, server))
	f.Add(stream)
	f.Add(server)
	f.Add([]byte(ckptMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		if seq, payload, err := decodeCheckpoint(data); err == nil {
			if !bytes.Equal(encodeCheckpoint(seq, payload), data) {
				t.Fatal("checkpoint framing decode∘encode diverged")
			}
		}
		if st, err := DecodeStreamState(data); err == nil {
			b2 := EncodeStreamState(st)
			st2, err := DecodeStreamState(b2)
			if err != nil {
				t.Fatalf("re-decode of accepted stream state failed: %v", err)
			}
			if !bytes.Equal(EncodeStreamState(st2), b2) {
				t.Fatal("stream state encode not idempotent")
			}
		}
		if st, err := DecodeServerState(data); err == nil {
			b2 := EncodeServerState(st)
			if _, err := DecodeServerState(b2); err != nil {
				t.Fatalf("re-decode of accepted server state failed: %v", err)
			}
		}
	})
}
