package persist

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/neat"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// The durability codecs are exact, not textual: floats travel as their
// IEEE-754 bit patterns, so a recovered clusterer re-ingests byte-for-
// byte the samples the original saw. The CSV codecs in internal/traj
// quantize coordinates to three decimals — fine for interchange, fatal
// for the crash-recovery byte-identity contract — which is why persist
// does not reuse them.
//
// All integers are little-endian and fixed-width. Every decoder is
// written against hostile input: element counts are validated against
// the bytes actually remaining before any allocation, so a corrupt
// length prefix is an error, never an OOM or a panic (FuzzWALReplay
// and FuzzCheckpointDecode pin this).

// enc is an append-only little-endian encoder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (e *enc) u64(v uint64) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (e *enc) i32(v int32)   { e.u32(uint32(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// dec is a bounds-checked little-endian decoder. The first failed read
// latches err; subsequent reads return zero values, so call sites can
// decode a whole structure and check err once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("persist: truncated input at offset %d (need %d of %d bytes)", d.off, n, len(d.b)-d.off)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *dec) u8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

func (d *dec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

func (d *dec) i32() int32   { return int32(d.u32()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := d.u32()
	p := d.take(int(n))
	return string(p)
}

// count reads an element count and validates it against the remaining
// bytes, given a minimum per-element encoded size. This is the OOM
// guard: a hostile count can never exceed remaining/minElemSize.
func (d *dec) count(minElemSize int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if max := (len(d.b) - d.off) / minElemSize; int(n) > max {
		d.fail("persist: implausible element count %d at offset %d (only %d bytes left)", n, d.off, len(d.b)-d.off)
		return 0
	}
	return int(n)
}

func (d *dec) rest() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("persist: %d trailing bytes after decode", len(d.b)-d.off)
	}
	return nil
}

// --- trajectory data ---

// Encoded sizes used for count validation.
const (
	locSize  = 4 + 4 + 8 + 8 + 8 // seg, junction, x, y, t
	minTraj  = 4 + 4             // id + point count
	minFrag  = 4 + 4 + 4 + 4     // traj, seg, index, point count
	minEntry = 8 + minFlow       // batch + flow
	minFlow  = 4 + 4 + 4 + 4 + 4 // member count, route count, front, back, (one empty member would add more; this is a floor)
)

func encLocation(e *enc, l traj.Location) {
	e.i32(int32(l.Seg))
	e.i32(int32(l.Junction))
	e.f64(l.Pt.X)
	e.f64(l.Pt.Y)
	e.f64(l.Time)
}

func decLocation(d *dec) traj.Location {
	var l traj.Location
	l.Seg = roadnet.SegID(d.i32())
	l.Junction = roadnet.NodeID(d.i32())
	l.Pt = geo.Point{X: d.f64(), Y: d.f64()}
	l.Time = d.f64()
	return l
}

func encTrajectory(e *enc, tr traj.Trajectory) {
	e.i32(int32(tr.ID))
	e.u32(uint32(len(tr.Points)))
	for _, p := range tr.Points {
		encLocation(e, p)
	}
}

func decTrajectory(d *dec) traj.Trajectory {
	var tr traj.Trajectory
	tr.ID = traj.ID(d.i32())
	n := d.count(locSize)
	if d.err != nil {
		return tr
	}
	tr.Points = make([]traj.Location, n)
	for i := range tr.Points {
		tr.Points[i] = decLocation(d)
	}
	return tr
}

// EncodeDataset serializes ds exactly (full float64 precision); the
// WAL stores one encoded dataset per ingested batch.
func EncodeDataset(ds traj.Dataset) []byte {
	var e enc
	e.str(ds.Name)
	e.u32(uint32(len(ds.Trajectories)))
	for _, tr := range ds.Trajectories {
		encTrajectory(&e, tr)
	}
	return e.b
}

// DecodeDataset inverts EncodeDataset. Corrupt or truncated input is
// an error, never a panic.
func DecodeDataset(b []byte) (traj.Dataset, error) {
	d := &dec{b: b}
	ds := decDataset(d)
	return ds, d.rest()
}

func decDataset(d *dec) traj.Dataset {
	var ds traj.Dataset
	ds.Name = d.str()
	n := d.count(minTraj)
	if d.err != nil {
		return ds
	}
	ds.Trajectories = make([]traj.Trajectory, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		ds.Trajectories = append(ds.Trajectories, decTrajectory(d))
	}
	return ds
}

func encFragment(e *enc, f traj.TFragment) {
	e.i32(int32(f.Traj))
	e.i32(int32(f.Seg))
	e.i32(int32(f.Index))
	e.u32(uint32(len(f.Points)))
	for _, p := range f.Points {
		encLocation(e, p)
	}
}

func decFragment(d *dec) traj.TFragment {
	var f traj.TFragment
	f.Traj = traj.ID(d.i32())
	f.Seg = roadnet.SegID(d.i32())
	f.Index = int(d.i32())
	n := d.count(locSize)
	if d.err != nil {
		return f
	}
	f.Points = make([]traj.Location, n)
	for i := range f.Points {
		f.Points[i] = decLocation(d)
	}
	return f
}

// --- flow clusters ---

func encFlow(e *enc, f *neat.FlowCluster) {
	e.u32(uint32(len(f.Members)))
	for _, m := range f.Members {
		e.i32(int32(m.Seg))
		e.u32(uint32(len(m.Fragments)))
		for _, fr := range m.Fragments {
			encFragment(e, fr)
		}
	}
	e.u32(uint32(len(f.Route)))
	for _, s := range f.Route {
		e.i32(int32(s))
	}
	front, back := f.Endpoints()
	e.i32(int32(front))
	e.i32(int32(back))
}

func decFlow(d *dec) *neat.FlowCluster {
	nm := d.count(4 + 4) // seg + fragment count per member
	if d.err != nil {
		return nil
	}
	members := make([]*neat.BaseCluster, 0, nm)
	for i := 0; i < nm && d.err == nil; i++ {
		seg := roadnet.SegID(d.i32())
		nf := d.count(minFrag)
		if d.err != nil {
			break
		}
		frags := make([]traj.TFragment, 0, nf)
		for j := 0; j < nf && d.err == nil; j++ {
			frags = append(frags, decFragment(d))
		}
		if d.err == nil {
			members = append(members, neat.RestoreBaseCluster(seg, frags))
		}
	}
	nr := d.count(4)
	if d.err != nil {
		return nil
	}
	route := make(roadnet.Route, nr)
	for i := range route {
		route[i] = roadnet.SegID(d.i32())
	}
	front := roadnet.NodeID(d.i32())
	back := roadnet.NodeID(d.i32())
	if d.err != nil {
		return nil
	}
	f, err := neat.RestoreFlow(members, route, front, back)
	if err != nil {
		d.fail("persist: %v", err)
		return nil
	}
	return f
}

// --- checkpoint payloads ---

// StreamEntry is one standing flow with the batch index it arrived in
// (the sliding-window eviction key).
type StreamEntry struct {
	Batch int
	Flow  *neat.FlowCluster
}

// CacheEntry is one warm distance-cache entry carried by a checkpoint
// (see distcache.Entry; duplicated here so the codec layer does not
// leak distcache's representation into the file format).
type CacheEntry struct {
	Key   uint64
	Dist  float64
	Bound float64
}

// StreamState is the full recoverable state of a stream.Clusterer: the
// batch index, the standing flow set in window order, the maintained
// ε-graph's adjacency rows (nil when the graph was dirty or disabled —
// recovery then rebuilds it, byte-identically), and optionally the
// warm distance-cache entries with the scope they are valid under.
type StreamState struct {
	Batch      int
	Entries    []StreamEntry
	Adjacency  [][]int // row i lists the ε-neighbors of Entries[i]; nil = rebuild
	CacheScope string
	Cache      []CacheEntry
}

// EncodeStreamState serializes a checkpoint payload for the streaming
// clusterer.
func EncodeStreamState(st StreamState) []byte {
	var e enc
	e.u64(uint64(st.Batch))
	e.u32(uint32(len(st.Entries)))
	for _, en := range st.Entries {
		e.u64(uint64(en.Batch))
		encFlow(&e, en.Flow)
	}
	if st.Adjacency == nil {
		e.u8(0)
	} else {
		e.u8(1)
		for _, row := range st.Adjacency {
			e.u32(uint32(len(row)))
			for _, j := range row {
				e.i32(int32(j))
			}
		}
	}
	e.str(st.CacheScope)
	e.u32(uint32(len(st.Cache)))
	for _, c := range st.Cache {
		e.u64(c.Key)
		e.f64(c.Dist)
		e.f64(c.Bound)
	}
	return e.b
}

// DecodeStreamState inverts EncodeStreamState, validating structural
// invariants (adjacency indices in range, batches non-decreasing and
// below the batch index) so a recovered clusterer never holds state an
// uncrashed one could not have reached.
func DecodeStreamState(b []byte) (StreamState, error) {
	d := &dec{b: b}
	var st StreamState
	st.Batch = int(d.u64())
	n := d.count(minEntry)
	if d.err != nil {
		return st, d.err
	}
	st.Entries = make([]StreamEntry, 0, n)
	prevBatch := -1
	for i := 0; i < n && d.err == nil; i++ {
		en := StreamEntry{Batch: int(d.u64())}
		en.Flow = decFlow(d)
		if d.err != nil {
			break
		}
		if en.Batch < prevBatch || en.Batch >= st.Batch {
			d.fail("persist: standing entry %d has batch %d outside [%d, %d)", i, en.Batch, prevBatch, st.Batch)
			break
		}
		prevBatch = en.Batch
		st.Entries = append(st.Entries, en)
	}
	if d.err != nil {
		return st, d.err
	}
	if d.u8() == 1 {
		st.Adjacency = make([][]int, len(st.Entries))
		for i := range st.Adjacency {
			rn := d.count(4)
			if d.err != nil {
				break
			}
			row := make([]int, rn)
			for k := range row {
				j := int(d.i32())
				if d.err == nil && (j < 0 || j >= len(st.Entries) || j == i) {
					d.fail("persist: adjacency row %d has out-of-range neighbor %d", i, j)
					break
				}
				row[k] = j
			}
			st.Adjacency[i] = row
		}
	}
	st.CacheScope = d.str()
	cn := d.count(8 + 8 + 8)
	if d.err != nil {
		return st, d.err
	}
	st.Cache = make([]CacheEntry, 0, cn)
	for i := 0; i < cn && d.err == nil; i++ {
		st.Cache = append(st.Cache, CacheEntry{Key: d.u64(), Dist: d.f64(), Bound: d.f64()})
	}
	return st, d.rest()
}

// ServerState is the recoverable state of the HTTP server's trajectory
// store: how many batches it accepted, plus the accumulated
// trajectories and t-fragments (the inputs of every clustering
// request).
type ServerState struct {
	Batches   uint64
	Trajs     []traj.Trajectory
	Fragments []traj.TFragment
}

// EncodeServerState serializes a server checkpoint payload.
func EncodeServerState(st ServerState) []byte {
	var e enc
	e.u64(st.Batches)
	e.u32(uint32(len(st.Trajs)))
	for _, tr := range st.Trajs {
		encTrajectory(&e, tr)
	}
	e.u32(uint32(len(st.Fragments)))
	for _, f := range st.Fragments {
		encFragment(&e, f)
	}
	return e.b
}

// DecodeServerState inverts EncodeServerState.
func DecodeServerState(b []byte) (ServerState, error) {
	d := &dec{b: b}
	var st ServerState
	st.Batches = d.u64()
	n := d.count(minTraj)
	if d.err != nil {
		return st, d.err
	}
	st.Trajs = make([]traj.Trajectory, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		st.Trajs = append(st.Trajs, decTrajectory(d))
	}
	fn := d.count(minFrag)
	if d.err != nil {
		return st, d.err
	}
	st.Fragments = make([]traj.TFragment, 0, fn)
	for i := 0; i < fn && d.err == nil; i++ {
		st.Fragments = append(st.Fragments, decFragment(d))
	}
	return st, d.rest()
}
