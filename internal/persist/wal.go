package persist

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WAL on-disk layout. A log is a directory of segment files named
//
//	wal-%016x.seg
//
// where the hex field is the sequence number of the segment's first
// record, so lexicographic file order is sequence order. Each segment
// opens with an 8-byte magic and then holds back-to-back records
// framed as
//
//	u32le payloadLen | u32le crc32c(payload) | payload
//
// with payload = u8 recordType | u64le seq | body. A crash can leave
// the final segment with a torn tail — a partially written frame, or a
// frame whose CRC does not match — and recovery treats the first
// invalid frame of the final segment as the end of the log (the etcd
// convention): everything before it replays, everything from it on is
// counted torn and truncated away on Open. An invalid frame in any
// earlier segment cannot be explained by a crash (later segments were
// written after it was sealed) and is reported as corruption.

const (
	segMagic    = "NEATWAL1"
	segSuffix   = ".seg"
	segPrefix   = "wal-"
	frameHeader = 8 // payloadLen + crc
	recHeader   = 1 + 8

	// recBatch is the only record type so far: one ingested trajectory
	// batch. The type byte leaves room for future record kinds without
	// a format break.
	recBatch = 1

	// maxRecordBytes bounds a single record's payload; a length prefix
	// beyond it is treated as an invalid frame, not an allocation.
	maxRecordBytes = 1 << 28

	// defaultSegmentBytes rotates segments at ~4 MiB.
	defaultSegmentBytes = 4 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segment describes one WAL segment file.
type segment struct {
	path     string
	firstSeq uint64
	// size is the byte length of the valid frames (plus magic); for a
	// torn final segment, the offset the file was truncated to.
	size int64
	// records is how many valid frames the segment holds.
	records int
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// frameRecord appends one framed record to buf and returns it.
func frameRecord(buf []byte, seq uint64, body []byte) []byte {
	var p enc
	p.u8(recBatch)
	p.u64(seq)
	p.b = append(p.b, body...)
	var f enc
	f.b = buf
	f.u32(uint32(len(p.b)))
	f.u32(crc32.Checksum(p.b, crcTable))
	f.b = append(f.b, p.b...)
	return f.b
}

// Record is one decoded WAL record, with its position inside its
// segment (the crash tests and `neatcli wal` use the offsets to name
// kill points).
type Record struct {
	// Seq is the record's sequence number (the batch index it logged).
	Seq uint64
	// Offset is the byte offset of the frame's first byte in its
	// segment file.
	Offset int64
	// Len is the full frame length (header + payload).
	Len int64
	// Body is the record body (the encoded dataset). Nil when scanned
	// with bodies discarded.
	Body []byte
}

// ScanResult describes how a segment scan ended.
type ScanResult struct {
	// Valid is the byte length of the valid prefix (magic + whole
	// frames).
	Valid int64
	// Torn reports that bytes followed the valid prefix that did not
	// form a valid frame (a torn tail — or corruption, if the segment
	// was not the last).
	Torn bool
	// TornBytes is how many bytes the torn tail spans.
	TornBytes int64
	// Err describes the first invalid frame; nil for a cleanly ended
	// segment.
	Err error
}

// scanSegment parses one segment's bytes. It never panics on hostile
// input and stops at the first invalid frame. keepBodies controls
// whether record bodies are retained (replay needs them; statting does
// not).
func scanSegment(data []byte, keepBodies bool) ([]Record, ScanResult) {
	var res ScanResult
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		res.Torn = len(data) > 0
		res.TornBytes = int64(len(data))
		res.Err = fmt.Errorf("persist: bad segment magic")
		return nil, res
	}
	off := int64(len(segMagic))
	var recs []Record
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameHeader {
			res.Err = fmt.Errorf("persist: torn frame header at offset %d", off)
			break
		}
		d := &dec{b: rest[:frameHeader]}
		plen := int64(d.u32())
		sum := d.u32()
		if plen < recHeader || plen > maxRecordBytes || int64(len(rest))-frameHeader < plen {
			res.Err = fmt.Errorf("persist: torn or invalid frame at offset %d (payload length %d, %d bytes left)",
				off, plen, int64(len(rest))-frameHeader)
			break
		}
		payload := rest[frameHeader : frameHeader+plen]
		if crc32.Checksum(payload, crcTable) != sum {
			res.Err = fmt.Errorf("persist: CRC mismatch at offset %d", off)
			break
		}
		pd := &dec{b: payload}
		kind := pd.u8()
		seq := pd.u64()
		if kind != recBatch {
			res.Err = fmt.Errorf("persist: unknown record type %d at offset %d", kind, off)
			break
		}
		r := Record{Seq: seq, Offset: off, Len: frameHeader + plen}
		if keepBodies {
			r.Body = payload[recHeader:]
		}
		recs = append(recs, r)
		off += frameHeader + plen
	}
	res.Valid = off
	if off < int64(len(data)) {
		res.Torn = true
		res.TornBytes = int64(len(data)) - off
	}
	return recs, res
}

// loadSegments lists, orders, and validates the log's segments,
// truncating a torn tail off the final one (tolerated — it is what a
// crash leaves) and failing on an invalid frame anywhere else
// (corruption — a crash cannot explain it). It returns the segment
// metadata and how many torn records were dropped.
func loadSegments(dir string) ([]segment, int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segment{path: filepath.Join(dir, e.Name()), firstSeq: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	var torn int64
	for i := range segs {
		data, err := os.ReadFile(segs[i].path)
		if err != nil {
			return nil, 0, err
		}
		recs, res := scanSegment(data, false)
		last := i == len(segs)-1
		if res.Torn && !last {
			return nil, 0, fmt.Errorf("persist: segment %s: %w (not the final segment; log is corrupt)", segs[i].path, res.Err)
		}
		if res.Torn {
			// A torn tail holds at most one whole record's worth of
			// frames in practice, but whatever it holds was never
			// acknowledged under FsyncAlways; count it and cut it off so
			// the next append starts on a frame boundary.
			torn++
			if err := os.Truncate(segs[i].path, res.Valid); err != nil {
				return nil, 0, fmt.Errorf("persist: truncate torn tail of %s: %w", segs[i].path, err)
			}
		}
		segs[i].size = res.Valid
		segs[i].records = len(recs)
	}
	return segs, torn, nil
}
