package persist

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// namespaceDir is the subdirectory of a data-directory root that
// holds one namespace (one durable session) per child directory. The
// default session keeps the root itself, so a pre-namespacing data
// directory recovers unchanged.
const namespaceDir = "sessions"

// Namespace returns the data directory for the named session under
// root: root/sessions/<name>.
func Namespace(root, name string) string {
	return filepath.Join(root, namespaceDir, name)
}

// ListNamespaces returns the session names that have a namespace
// under root, sorted. A root without a sessions/ directory (including
// any pre-namespacing data directory) is an empty list, not an error.
func ListNamespaces(root string) ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(root, namespaceDir))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
