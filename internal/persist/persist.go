// Package persist is the durability layer under the NEAT streaming
// clusterer and HTTP server: an append-only, CRC32C-framed write-ahead
// log of ingested trajectory batches plus periodic versioned binary
// checkpoints of the full derived state, written atomically. Together
// they give the one production property the engine otherwise lacks —
// state that outlives the process:
//
//   - every acknowledged ingest is in the WAL (durable per the fsync
//     policy), so a crash loses at most the unsynced tail;
//   - a checkpoint bounds replay: recovery loads the newest valid
//     checkpoint and replays only the WAL records past it, through the
//     normal ingest path, so the recovered state is byte-identical to
//     the state an uncrashed process would hold;
//   - a torn final record (the signature a crash leaves) is tolerated:
//     it is counted, truncated away, and only that record is lost;
//   - checkpoints retire WAL segments: once a checkpoint covers every
//     record in a segment, the segment is deleted (compaction), so
//     disk stays proportional to the window, not the stream.
//
// The package is storage only: it moves opaque batch bodies and
// checkpoint payloads (see codec.go for the exact binary codecs) and
// knows nothing about clustering. internal/stream and internal/server
// own the mapping between their in-memory state and these bytes.
//
// Everything is stdlib: hash/crc32 (Castagnoli), os, encoding by hand.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/traj"
)

// FsyncPolicy selects when the WAL is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acknowledged ingest is
	// on disk. The safest and slowest policy, and the default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background ticker (Options.FsyncInterval,
	// default 100ms) and on Close; a crash loses at most one interval
	// of acknowledged batches, but recovery still sees a prefix of the
	// acknowledged sequence — never a gap.
	FsyncInterval
	// FsyncOff never syncs explicitly (the OS flushes at its leisure);
	// for tests and bulk loads.
	FsyncOff
)

// ParseFsyncPolicy maps the CLI spellings (always, interval, off) to a
// policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync policy %q (want always, interval, or off)", s)
}

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Options parameterizes a Store.
type Options struct {
	// Dir is the data directory (created if absent). Required.
	Dir string
	// Fsync is the WAL flush policy; the zero value is FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncInterval ticker period; 0 means 100ms.
	FsyncInterval time.Duration
	// SegmentBytes rotates the active WAL segment once it reaches this
	// size; 0 means ~4 MiB.
	SegmentBytes int64
	// CheckpointEvery is how many batches between checkpoints for
	// owners that checkpoint on a cadence (internal/stream,
	// internal/server); 0 means 8, negative disables periodic
	// checkpoints (one is still written on a clean Close).
	CheckpointEvery int
	// KeepCheckpoints retains the newest N checkpoint files; 0 means 2.
	KeepCheckpoints int
	// PersistCache asks the owner to include warm distance-cache
	// entries in checkpoint payloads, so a restart serves re-ingested
	// pairs without shortest-path queries. Off by default (checkpoints
	// stay small; correctness is unaffected either way).
	PersistCache bool
	// CacheExportLimit bounds how many cache entries a checkpoint
	// carries when PersistCache is on; 0 means 1<<16.
	CacheExportLimit int
	// Obs is the metrics registry for the neat_wal_* and
	// neat_checkpoint_* series; nil disables instrumentation.
	Obs *obs.Registry
	// Fault is an optional fault injector consulted at wal_append,
	// wal_fsync, and checkpoint_write. An injected append or fsync
	// failure leaves the log as if the append never happened (the
	// caller can retry); an injected checkpoint failure leaves the
	// previous checkpoint in place.
	Fault *fault.Injector
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 8
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = defaultKeepCheckpoints
	}
	if o.CacheExportLimit <= 0 {
		o.CacheExportLimit = 1 << 16
	}
	return o
}

// RecoveryStats describes what Open found on disk.
type RecoveryStats struct {
	// CheckpointSeq is the newest valid checkpoint's covered sequence
	// number (0 with no checkpoint).
	CheckpointSeq uint64
	// CheckpointBytes is that checkpoint's payload size.
	CheckpointBytes int64
	// Records is how many valid WAL records the log holds (across all
	// segments, before any Replay filtering).
	Records int
	// Replayed is how many records Replay actually delivered to the
	// owner (those at or past the recovery checkpoint); 0 when the
	// checkpoint covered the whole log.
	Replayed int
	// TornTails is how many torn tails were truncated (0 or 1 per
	// Open; kept cumulative by Stats across the Store's life).
	TornTails int64
	// SkippedCheckpoints is how many invalid checkpoint files were
	// passed over before a valid one (0 when the newest was valid).
	SkippedCheckpoints int
}

// Stats is a point-in-time snapshot of a Store's counters, exposed by
// the server's /v1/stats persistence block and the stream accessor.
type Stats struct {
	Dir                 string
	Fsync               string
	Appends             int64
	AppendedBytes       int64
	Fsyncs              int64
	Segments            int
	WALBytes            int64
	CheckpointSeq       uint64
	CheckpointBytes     int64
	Checkpoints         int64
	LastCheckpointError string
	Recovery            RecoveryStats
}

// Store is one durable log + checkpoint directory. Methods are safe
// for concurrent use; owners nevertheless serialize appends with
// their own commit ordering (a WAL record must not be written for a
// batch whose in-memory commit failed).
type Store struct {
	opts Options

	mu      sync.Mutex
	segs    []segment
	cur     *os.File // active segment (last of segs); nil until first append
	ckpt    CheckpointInfo
	payload []byte // newest valid checkpoint payload (released by Checkpoint)
	rec     RecoveryStats
	closed  bool

	appends     int64
	appBytes    int64
	fsyncs      int64
	ckpts       int64
	torn        int64
	lastCkptErr string

	stopSync chan struct{}
	syncDone chan struct{}

	// Pre-resolved obs handles; nil without a registry (no-op).
	mAppends  *obs.Counter
	mBytes    *obs.Counter
	mFsyncs   *obs.Counter
	mSegments *obs.Gauge
	mReplayed *obs.Counter
	mTorn     *obs.Counter
	mCkpts    *obs.Counter
	mCkptSeq  *obs.Gauge
	mCkptB    *obs.Gauge
}

// Open creates or recovers the durable store in opts.Dir: it loads the
// newest valid checkpoint (falling back across corrupt ones), scans
// the WAL segments, truncates a torn final tail, and leaves the log
// ready for appends. The caller then applies the checkpoint payload
// (Checkpoint) and replays the tail (Replay) through its ingest path.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("persist: Options.Dir is required")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create data dir: %w", err)
	}
	s := &Store{opts: opts}
	s.instrument(opts.Obs)

	cks, err := listCheckpoints(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("persist: list checkpoints: %w", err)
	}
	for _, ci := range cks {
		if ci.Err != nil {
			s.rec.SkippedCheckpoints++
			continue
		}
		data, err := os.ReadFile(ci.Path)
		if err != nil {
			s.rec.SkippedCheckpoints++
			continue
		}
		seq, payload, err := decodeCheckpoint(data)
		if err != nil {
			s.rec.SkippedCheckpoints++
			continue
		}
		s.ckpt = ci
		s.payload = payload
		s.rec.CheckpointSeq = seq
		s.rec.CheckpointBytes = int64(len(payload))
		break
	}

	segs, torn, err := loadSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	s.segs = segs
	s.torn = torn
	s.rec.TornTails = torn
	for _, sg := range segs {
		s.rec.Records += sg.records
	}
	if torn > 0 {
		s.mTorn.Add(torn)
	}
	s.mSegments.Set(float64(len(segs)))
	s.mCkptSeq.Set(float64(s.rec.CheckpointSeq))
	s.mCkptB.Set(float64(s.rec.CheckpointBytes))

	if n := len(segs); n > 0 {
		f, err := os.OpenFile(segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("persist: reopen active segment: %w", err)
		}
		s.cur = f
	}
	if opts.Fsync == FsyncInterval {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	return s, nil
}

func (s *Store) instrument(reg *obs.Registry) {
	s.mAppends = reg.Counter("neat_wal_appends_total")
	s.mBytes = reg.Counter("neat_wal_bytes_total")
	s.mFsyncs = reg.Counter("neat_wal_fsyncs_total")
	s.mSegments = reg.Gauge("neat_wal_segments")
	s.mReplayed = reg.Counter("neat_wal_replayed_records_total")
	s.mTorn = reg.Counter("neat_wal_torn_records_total")
	s.mCkpts = reg.Counter("neat_checkpoint_writes_total")
	s.mCkptSeq = reg.Gauge("neat_checkpoint_seq")
	s.mCkptB = reg.Gauge("neat_checkpoint_bytes")
}

// Checkpoint returns the newest valid checkpoint found at Open: the
// sequence number it covers (state after records [0, seq)) and its
// payload. ok is false when the directory held no usable checkpoint.
func (s *Store) Checkpoint() (seq uint64, payload []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.payload == nil {
		return 0, nil, false
	}
	return s.rec.CheckpointSeq, s.payload, true
}

// ReloadCheckpoint re-reads the newest valid checkpoint from disk,
// falling back across corrupt files exactly like Open. Unlike
// Checkpoint — which only serves the payload held since Open and is
// superseded by the first WriteCheckpoint — this works mid-life, which
// is what a quarantined session needs to rebuild itself from
// checkpoint + WAL replay without restarting the process. ok is false
// when the directory holds no usable checkpoint (recovery then replays
// the WAL from the start).
func (s *Store) ReloadCheckpoint() (seq uint64, payload []byte, ok bool) {
	cks, err := listCheckpoints(s.opts.Dir)
	if err != nil {
		return 0, nil, false
	}
	for _, ci := range cks {
		if ci.Err != nil {
			continue
		}
		data, err := os.ReadFile(ci.Path)
		if err != nil {
			continue
		}
		seq, payload, err := decodeCheckpoint(data)
		if err != nil {
			continue
		}
		return seq, payload, true
	}
	return 0, nil, false
}

// Replay streams every valid WAL record with Seq >= from, in sequence
// order, decoding each body as a trajectory batch. The owner pushes
// each batch through its normal ingest path, which is what makes the
// recovered state byte-identical to an uncrashed run's.
func (s *Store) Replay(from uint64, fn func(seq uint64, batch traj.Dataset) error) error {
	s.mu.Lock()
	segs := append([]segment(nil), s.segs...)
	s.mu.Unlock()
	for _, sg := range segs {
		data, err := os.ReadFile(sg.path)
		if err != nil {
			return fmt.Errorf("persist: replay %s: %w", sg.path, err)
		}
		if int64(len(data)) > sg.size {
			data = data[:sg.size] // appends since Open are not part of recovery
		}
		recs, res := scanSegment(data, true)
		if res.Err != nil && !res.Torn {
			return fmt.Errorf("persist: replay %s: %w", sg.path, res.Err)
		}
		for _, r := range recs {
			if r.Seq < from {
				continue
			}
			ds, err := DecodeDataset(r.Body)
			if err != nil {
				return fmt.Errorf("persist: replay record %d: %w", r.Seq, err)
			}
			if err := fn(r.Seq, ds); err != nil {
				return err
			}
			s.mReplayed.Inc()
			s.mu.Lock()
			s.rec.Replayed++
			s.mu.Unlock()
		}
	}
	return nil
}

// AppendBatch logs one ingested batch under sequence number seq. On
// any failure — injected, ENOSPC, a failed fsync under FsyncAlways —
// the segment is rewound to its pre-append length, so the log never
// holds a record for a batch the caller rolled back.
func (s *Store) AppendBatch(seq uint64, batch traj.Dataset) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persist: store is closed")
	}
	if err := s.opts.Fault.Inject(fault.WALAppend); err != nil {
		return err
	}
	if s.cur != nil && s.segs[len(s.segs)-1].size >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	if s.cur == nil {
		if err := s.newSegmentLocked(seq); err != nil {
			return err
		}
	}
	sg := &s.segs[len(s.segs)-1]
	frame := frameRecord(nil, seq, EncodeDataset(batch))
	if _, err := s.cur.Write(frame); err != nil {
		s.rewindLocked(sg.size)
		return fmt.Errorf("persist: wal append: %w", err)
	}
	if s.opts.Fsync == FsyncAlways {
		if err := s.fsyncLocked(); err != nil {
			s.rewindLocked(sg.size)
			return err
		}
	}
	sg.size += int64(len(frame))
	sg.records++
	s.appends++
	s.appBytes += int64(len(frame))
	s.mAppends.Inc()
	s.mBytes.Add(int64(len(frame)))
	return nil
}

// rotateLocked seals the active segment (syncing it unless FsyncOff)
// so the next append opens a fresh one.
func (s *Store) rotateLocked() error {
	if s.opts.Fsync != FsyncOff {
		if err := s.fsyncLocked(); err != nil {
			return err
		}
	}
	if err := s.cur.Close(); err != nil {
		return fmt.Errorf("persist: seal segment: %w", err)
	}
	s.cur = nil
	return nil
}

func (s *Store) newSegmentLocked(firstSeq uint64) error {
	path := filepath.Join(s.opts.Dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("persist: create segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("persist: write segment magic: %w", err)
	}
	syncDir(s.opts.Dir)
	s.cur = f
	s.segs = append(s.segs, segment{path: path, firstSeq: firstSeq, size: int64(len(segMagic))})
	s.mSegments.Set(float64(len(s.segs)))
	return nil
}

// rewindLocked truncates the active segment back to size, undoing a
// failed append so the on-disk log matches the caller's rolled-back
// state. Best effort: if the truncate itself fails the next Open's
// scan still stops at the valid prefix (the CRC of a half-written
// frame cannot match).
func (s *Store) rewindLocked(size int64) {
	if s.cur == nil {
		return
	}
	_ = s.cur.Truncate(size)
	_, _ = s.cur.Seek(size, 0)
}

func (s *Store) fsyncLocked() error {
	if s.cur == nil {
		return nil
	}
	if err := s.opts.Fault.Inject(fault.WALFsync); err != nil {
		return err
	}
	if err := s.cur.Sync(); err != nil {
		return fmt.Errorf("persist: wal fsync: %w", err)
	}
	s.fsyncs++
	s.mFsyncs.Inc()
	return nil
}

func (s *Store) syncLoop() {
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	defer close(s.syncDone)
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				_ = s.fsyncLocked()
			}
			s.mu.Unlock()
		}
	}
}

// Sync flushes the active WAL segment to stable storage regardless of
// policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.fsyncLocked()
}

// WriteCheckpoint atomically persists a checkpoint covering records
// [0, seq), prunes old checkpoint files beyond KeepCheckpoints, and
// compacts WAL segments every record of which the checkpoint covers.
// Failure is non-destructive: the previous checkpoint and the whole
// log remain.
func (s *Store) WriteCheckpoint(seq uint64, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persist: store is closed")
	}
	if err := s.opts.Fault.Inject(fault.CheckpointWrite); err != nil {
		s.lastCkptErr = err.Error()
		return err
	}
	path, err := writeCheckpointFile(s.opts.Dir, seq, payload)
	if err != nil {
		s.lastCkptErr = err.Error()
		return fmt.Errorf("persist: write checkpoint: %w", err)
	}
	s.lastCkptErr = ""
	s.ckpt = CheckpointInfo{Path: path, Seq: seq, Bytes: int64(len(payload))}
	s.payload = nil // recovery payload superseded; owners re-encode on demand
	s.rec.CheckpointSeq = seq
	s.rec.CheckpointBytes = int64(len(payload))
	s.ckpts++
	s.mCkpts.Inc()
	s.mCkptSeq.Set(float64(seq))
	s.mCkptB.Set(float64(len(payload)))
	s.pruneCheckpointsLocked()
	s.compactLocked(seq)
	return nil
}

func (s *Store) pruneCheckpointsLocked() {
	cks, err := listCheckpoints(s.opts.Dir)
	if err != nil {
		return
	}
	for i, ci := range cks {
		if i >= s.opts.KeepCheckpoints {
			_ = os.Remove(ci.Path)
		}
	}
}

// compactLocked deletes WAL segments whose every record the checkpoint
// at seq covers: segment i is retirable iff a successor segment exists
// and that successor starts at or below seq (so records >= seq, if
// any, live wholly in later segments). The active segment is never
// deleted.
func (s *Store) compactLocked(seq uint64) {
	keep := 0
	for keep < len(s.segs)-1 && s.segs[keep+1].firstSeq <= seq {
		keep++
	}
	if keep == 0 {
		return
	}
	for _, sg := range s.segs[:keep] {
		_ = os.Remove(sg.path)
	}
	s.segs = append(s.segs[:0], s.segs[keep:]...)
	syncDir(s.opts.Dir)
	s.mSegments.Set(float64(len(s.segs)))
}

// Close flushes and closes the log. The owner writes its final
// checkpoint before calling Close. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.fsyncLocked()
	if s.cur != nil {
		if cerr := s.cur.Close(); err == nil {
			err = cerr
		}
		s.cur = nil
	}
	s.closed = true
	stop := s.stopSync
	done := s.syncDone
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// Abort closes file descriptors without flushing or checkpointing —
// the programmatic equivalent of kill -9, used by the chaos harness
// and the crash-recovery tests to abandon a store mid-flight. The
// on-disk state is whatever the crash timing left.
func (s *Store) Abort() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.cur != nil {
		_ = s.cur.Close()
		s.cur = nil
	}
	s.closed = true
	stop := s.stopSync
	done := s.syncDone
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// CheckpointEvery returns the resolved checkpoint cadence (batches
// between checkpoints; <0 disables periodic checkpoints).
func (s *Store) CheckpointEvery() int { return s.opts.CheckpointEvery }

// PersistCache reports whether checkpoint payloads should carry warm
// distance-cache entries, and under what bound.
func (s *Store) PersistCache() (on bool, limit int) {
	return s.opts.PersistCache, s.opts.CacheExportLimit
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.opts.Dir }

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var wb int64
	for _, sg := range s.segs {
		wb += sg.size
	}
	return Stats{
		Dir:                 s.opts.Dir,
		Fsync:               s.opts.Fsync.String(),
		Appends:             s.appends,
		AppendedBytes:       s.appBytes,
		Fsyncs:              s.fsyncs,
		Segments:            len(s.segs),
		WALBytes:            wb,
		CheckpointSeq:       s.rec.CheckpointSeq,
		CheckpointBytes:     s.rec.CheckpointBytes,
		Checkpoints:         s.ckpts,
		LastCheckpointError: s.lastCkptErr,
		Recovery:            s.rec,
	}
}

// InspectReport is what `neatcli wal` renders: every checkpoint and
// segment in a data directory, validated.
type InspectReport struct {
	Dir         string
	Checkpoints []CheckpointInfo
	Segments    []SegmentInfo
}

// SegmentInfo describes one scanned WAL segment.
type SegmentInfo struct {
	Path      string
	FirstSeq  uint64
	Bytes     int64
	Records   []Record // bodies discarded
	Torn      bool
	TornBytes int64
	Err       error
}

// Inspect scans a data directory read-only (nothing is truncated or
// deleted) and reports every checkpoint and segment with their
// validation state. The crash tests use the record offsets to place
// kill points exactly at and between frame boundaries.
func Inspect(dir string) (InspectReport, error) {
	rep := InspectReport{Dir: dir}
	cks, err := listCheckpoints(dir)
	if err != nil {
		return rep, err
	}
	rep.Checkpoints = cks
	entries, err := os.ReadDir(dir)
	if err != nil {
		return rep, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			if _, ok := parseSegName(e.Name()); ok {
				names = append(names, e.Name())
			}
		}
	}
	sort.Strings(names) // lexicographic = by firstSeq (fixed-width hex)
	for _, name := range names {
		first, _ := parseSegName(name)
		si := SegmentInfo{Path: filepath.Join(dir, name), FirstSeq: first}
		data, err := os.ReadFile(si.Path)
		if err != nil {
			si.Err = err
			rep.Segments = append(rep.Segments, si)
			continue
		}
		si.Bytes = int64(len(data))
		recs, res := scanSegment(data, false)
		si.Records = recs
		si.Torn = res.Torn
		si.TornBytes = res.TornBytes
		si.Err = res.Err
		rep.Segments = append(rep.Segments, si)
	}
	return rep, nil
}
