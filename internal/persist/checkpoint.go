package persist

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint on-disk layout. A checkpoint file ckpt-%016x.ck (hex
// field = the sequence number it covers: the state after applying
// records [0, seq)) holds
//
//	"NEATCKP1" | u32le version | u64le seq | u32le payloadLen |
//	u32le crc32c(payload) | payload
//
// and is written atomically: encode to a .tmp file in the same
// directory, fsync it, rename over the final name, fsync the
// directory. A reader therefore never observes a half-written
// checkpoint under its final name; a crash mid-write leaves a .tmp
// that Open deletes. The version field gates payload evolution — a
// reader rejects versions it does not know rather than misparsing
// them.

const (
	ckptMagic   = "NEATCKP1"
	ckptSuffix  = ".ck"
	ckptPrefix  = "ckpt-"
	ckptVersion = 1

	// defaultKeepCheckpoints retains the newest N checkpoints so one
	// corrupt newest file (torn disk, cosmic ray) falls back instead of
	// cold-starting.
	defaultKeepCheckpoints = 2
)

func ckptName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix)
}

func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func encodeCheckpoint(seq uint64, payload []byte) []byte {
	var e enc
	e.b = append(e.b, ckptMagic...)
	e.u32(ckptVersion)
	e.u64(seq)
	e.u32(uint32(len(payload)))
	e.u32(crc32.Checksum(payload, crcTable))
	e.b = append(e.b, payload...)
	return e.b
}

// decodeCheckpoint validates a checkpoint file's framing and returns
// the covered sequence number and payload. Hostile input is an error,
// never a panic or an over-allocation.
func decodeCheckpoint(data []byte) (uint64, []byte, error) {
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return 0, nil, fmt.Errorf("persist: bad checkpoint magic")
	}
	d := &dec{b: data, off: len(ckptMagic)}
	version := d.u32()
	seq := d.u64()
	plen := d.u32()
	sum := d.u32()
	if d.err != nil {
		return 0, nil, d.err
	}
	if version != ckptVersion {
		return 0, nil, fmt.Errorf("persist: unsupported checkpoint version %d (have %d)", version, ckptVersion)
	}
	payload := d.take(int(plen))
	if d.err != nil {
		return 0, nil, d.err
	}
	if err := d.rest(); err != nil {
		return 0, nil, err
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return 0, nil, fmt.Errorf("persist: checkpoint CRC mismatch")
	}
	return seq, payload, nil
}

// CheckpointInfo describes one checkpoint file on disk.
type CheckpointInfo struct {
	Path  string
	Seq   uint64
	Bytes int64
	// Err is non-nil when the file failed validation; recovery skips
	// such files.
	Err error
}

// listCheckpoints returns the directory's checkpoint files newest
// (highest seq) first, validated. Stray .tmp files from a crashed
// write are removed.
func listCheckpoints(dir string) ([]CheckpointInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []CheckpointInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") && strings.HasPrefix(name, ckptPrefix) {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		seq, ok := parseCkptName(name)
		if !ok {
			continue
		}
		ci := CheckpointInfo{Path: filepath.Join(dir, name), Seq: seq}
		data, err := os.ReadFile(ci.Path)
		if err != nil {
			ci.Err = err
		} else {
			ci.Bytes = int64(len(data))
			fseq, _, err := decodeCheckpoint(data)
			if err != nil {
				ci.Err = err
			} else if fseq != seq {
				ci.Err = fmt.Errorf("persist: checkpoint %s claims seq %d", name, fseq)
			}
		}
		out = append(out, ci)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out, nil
}

// writeCheckpointFile writes the framed checkpoint atomically and
// returns the file's final path.
func writeCheckpointFile(dir string, seq uint64, payload []byte) (string, error) {
	final := filepath.Join(dir, ckptName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	framed := encodeCheckpoint(seq, payload)
	if _, err := f.Write(framed); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	syncDir(dir)
	return final, nil
}

// syncDir fsyncs a directory so a rename (or segment create/delete)
// survives power loss; best-effort on filesystems that reject
// directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
