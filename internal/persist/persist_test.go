package persist

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/geo"
	"repro/internal/neat"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// testBatch builds a small dataset whose floats exercise full float64
// precision (the CSV codecs would quantize these; persist must not).
func testBatch(seed int) traj.Dataset {
	mk := func(id traj.ID) traj.Trajectory {
		tr := traj.Trajectory{ID: id}
		for k := 0; k < 4; k++ {
			f := float64(seed*31+int(id)*7+k) + math.Pi/float64(k+1)
			tr.Points = append(tr.Points, traj.Location{
				Seg:      roadnet.SegID(seed + k),
				Pt:       geo.Point{X: f * 1e3, Y: -f / 3},
				Time:     float64(k) + 0.1234567890123,
				Junction: roadnet.NoNode,
			})
		}
		return tr
	}
	return traj.Dataset{
		Name:         "batch",
		Trajectories: []traj.Trajectory{mk(traj.ID(seed * 10)), mk(traj.ID(seed*10 + 1))},
	}
}

func TestDatasetCodecExactRoundTrip(t *testing.T) {
	ds := testBatch(3)
	// Values the quantizing CSV codec cannot carry.
	ds.Trajectories[0].Points[0].Pt.X = 1e-300
	ds.Trajectories[0].Points[1].Pt.Y = math.Copysign(0, -1)
	ds.Trajectories[0].Points[2].Time = 1.0000000000000002
	got, err := DecodeDataset(EncodeDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ds) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, ds)
	}
	if math.Signbit(got.Trajectories[0].Points[1].Pt.Y) != true {
		t.Error("negative zero lost its sign bit")
	}
}

func TestDatasetDecodeRejectsCorruption(t *testing.T) {
	b := EncodeDataset(testBatch(1))
	if _, err := DecodeDataset(b[:len(b)-3]); err == nil {
		t.Error("truncated dataset decoded")
	}
	if _, err := DecodeDataset(append(append([]byte(nil), b...), 0xEE)); err == nil {
		t.Error("trailing garbage accepted")
	}
	// A hostile trajectory count must not allocate. The count sits
	// right after the length-prefixed name.
	hostile := append([]byte(nil), b...)
	off := 4 + len("batch")
	for i := 0; i < 4; i++ {
		hostile[off+i] = 0xFF
	}
	if _, err := DecodeDataset(hostile); err == nil {
		t.Error("implausible count accepted")
	}
}

func TestWALAppendReplayAndRotation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Fsync: FsyncOff, SegmentBytes: 256}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	want := make([]traj.Dataset, n)
	for i := 0; i < n; i++ {
		want[i] = testBatch(i)
		if err := s.AppendBatch(uint64(i), want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation at SegmentBytes=256, got %d segment(s)", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Recovery.Records != n || st.Recovery.TornTails != 0 {
		t.Fatalf("recovery stats = %+v, want %d clean records", st.Recovery, n)
	}
	var seqs []uint64
	err = s2.Replay(0, func(seq uint64, ds traj.Dataset) error {
		if !reflect.DeepEqual(ds, want[seq]) {
			t.Errorf("record %d body diverged", seq)
		}
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, seq := range seqs {
		if seq != uint64(i) {
			t.Fatalf("replay order %v", seqs)
		}
	}
	if len(seqs) != n {
		t.Fatalf("replayed %d records, want %d", len(seqs), n)
	}
	// Replay from the middle: only the tail.
	count := 0
	if err := s2.Replay(4, func(uint64, traj.Dataset) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("Replay(4) visited %d records, want 2", count)
	}
}

// lastSegment returns the path and records of the final segment.
func lastSegment(t *testing.T, dir string) SegmentInfo {
	t.Helper()
	rep, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Segments) == 0 {
		t.Fatal("no segments")
	}
	return rep.Segments[len(rep.Segments)-1]
}

func TestTornFinalRecordDroppedOnly(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Fsync: FsyncOff}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.AppendBatch(uint64(i), testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Abort() // simulated kill -9

	// Tear the final record: cut the file inside its frame.
	si := lastSegment(t, dir)
	last := si.Records[len(si.Records)-1]
	if err := os.Truncate(si.Path, last.Offset+last.Len/2); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Recovery.TornTails != 1 {
		t.Fatalf("torn tails = %d, want 1", st.Recovery.TornTails)
	}
	if st.Recovery.Records != 2 {
		t.Fatalf("surviving records = %d, want 2 (only the torn final record drops)", st.Recovery.Records)
	}
	// The log keeps working: the dropped sequence number is reusable.
	if err := s2.AppendBatch(2, testBatch(2)); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := s2.Replay(0, func(uint64, traj.Dataset) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("replay after re-append visited %d records, want 3", count)
	}
}

func TestCorruptSealedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Fsync: FsyncOff, SegmentBytes: 256}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.AppendBatch(uint64(i), testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Segments) < 2 {
		t.Fatal("need at least two segments for this test")
	}
	// Flip a payload byte in the first (sealed) segment: that is not a
	// crash signature, so Open must refuse rather than silently drop
	// acknowledged records.
	first := rep.Segments[0]
	data, err := os.ReadFile(first.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[first.Records[0].Offset+frameHeader+5] ^= 0xFF
	if err := os.WriteFile(first.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts); err == nil {
		t.Fatal("Open accepted a corrupt sealed segment")
	}
}

func TestCheckpointWriteLoadPruneFallback(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Fsync: FsyncOff, KeepCheckpoints: 2}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 4; seq++ {
		payload := EncodeServerState(ServerState{Batches: seq})
		if err := s.WriteCheckpoint(seq, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checkpoints) != 2 {
		t.Fatalf("prune kept %d checkpoints, want 2", len(rep.Checkpoints))
	}

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	seq, payload, ok := s2.Checkpoint()
	if !ok || seq != 4 {
		t.Fatalf("loaded checkpoint seq %d ok=%v, want 4", seq, ok)
	}
	st, err := DecodeServerState(payload)
	if err != nil || st.Batches != 4 {
		t.Fatalf("payload decode: %+v, %v", st, err)
	}
	s2.Close()

	// Corrupt the newest checkpoint: recovery must fall back to seq 3,
	// not cold-start.
	newest := filepath.Join(dir, ckptName(4))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	seq, _, ok = s3.Checkpoint()
	if !ok || seq != 3 {
		t.Fatalf("fallback checkpoint seq %d ok=%v, want 3", seq, ok)
	}
	if s3.Stats().Recovery.SkippedCheckpoints != 1 {
		t.Fatalf("skipped = %d, want 1", s3.Stats().Recovery.SkippedCheckpoints)
	}
}

func TestCheckpointCompactsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Fsync: FsyncOff, SegmentBytes: 256}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.AppendBatch(uint64(i), testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats().Segments
	if before < 3 {
		t.Fatalf("need >= 3 segments, got %d", before)
	}
	if err := s.WriteCheckpoint(8, EncodeServerState(ServerState{Batches: 8})); err != nil {
		t.Fatal(err)
	}
	after := s.Stats().Segments
	if after != 1 {
		t.Fatalf("compaction left %d segments, want 1 (the active one)", after)
	}
	// Nothing the checkpoint does not cover was lost: replay from 8 is
	// empty, and appends continue.
	if err := s.Replay(8, func(seq uint64, _ traj.Dataset) error {
		t.Errorf("unexpected record %d after full compaction", seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(8, testBatch(8)); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedFaultsRollBackCleanly(t *testing.T) {
	dir := t.TempDir()
	in := fault.New(fault.Config{Seed: 7, Points: map[fault.Point]fault.Spec{
		fault.WALAppend:       {ErrProb: 1},
		fault.CheckpointWrite: {ErrProb: 1},
	}})
	s, err := Open(Options{Dir: dir, Fsync: FsyncAlways, Fault: in})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendBatch(0, testBatch(0)); !fault.IsInjected(err) {
		t.Fatalf("append error = %v, want injected", err)
	}
	if err := s.WriteCheckpoint(1, []byte("x")); !fault.IsInjected(err) {
		t.Fatalf("checkpoint error = %v, want injected", err)
	}
	if st := s.Stats(); st.Appends != 0 || st.Checkpoints != 0 || st.LastCheckpointError == "" {
		t.Fatalf("stats after injected failures: %+v", st)
	}
	in.SetEnabled(false)
	if err := s.AppendBatch(0, testBatch(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.LastCheckpointError != "" {
		t.Fatalf("checkpoint error not cleared: %q", st.LastCheckpointError)
	}

	// A failed fsync under FsyncAlways rewinds the segment too: the
	// record must not exist for a batch the caller rolled back.
	in2 := fault.New(fault.Config{Seed: 9, Points: map[fault.Point]fault.Spec{
		fault.WALFsync: {ErrProb: 1},
	}})
	dir2 := t.TempDir()
	s2, err := Open(Options{Dir: dir2, Fsync: FsyncAlways, Fault: in2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.AppendBatch(0, testBatch(0)); !fault.IsInjected(err) {
		t.Fatalf("fsync-failed append error = %v, want injected", err)
	}
	in2.SetEnabled(false)
	if err := s2.AppendBatch(0, testBatch(0)); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := s2.Replay(0, func(uint64, traj.Dataset) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("log holds %d records after one rolled-back and one committed append, want 1", count)
	}
}

func TestStoreMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Fsync: FsyncAlways, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendBatch(0, testBatch(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(1, []byte("p")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"neat_wal_appends_total 1",
		"neat_wal_fsyncs_total 1",
		"neat_wal_segments 1",
		"neat_checkpoint_writes_total 1",
		"neat_checkpoint_seq 1",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// testFlow builds a structurally valid flow without a pipeline run.
func testFlow(segs ...roadnet.SegID) *neat.FlowCluster {
	members := make([]*neat.BaseCluster, len(segs))
	route := make(roadnet.Route, len(segs))
	for i, sg := range segs {
		frag := traj.TFragment{
			Traj: traj.ID(i), Seg: sg, Index: i,
			Points: []traj.Location{{Seg: sg, Pt: geo.Point{X: float64(sg), Y: math.Sqrt2}, Time: float64(i), Junction: roadnet.NoNode}},
		}
		members[i] = neat.RestoreBaseCluster(sg, []traj.TFragment{frag})
		route[i] = sg
	}
	f, err := neat.RestoreFlow(members, route, 1, 2)
	if err != nil {
		panic(err)
	}
	return f
}

func TestStreamStateCodecIdempotent(t *testing.T) {
	st := StreamState{
		Batch: 5,
		Entries: []StreamEntry{
			{Batch: 3, Flow: testFlow(4, 7)},
			{Batch: 4, Flow: testFlow(9)},
		},
		Adjacency:  [][]int{{1}, {0}},
		CacheScope: "fp|undirected|dijkstra",
		Cache:      []CacheEntry{{Key: 42, Dist: 1234.5, Bound: math.Inf(1)}},
	}
	b1 := EncodeStreamState(st)
	got, err := DecodeStreamState(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2 := EncodeStreamState(got)
	if !bytes.Equal(b1, b2) {
		t.Fatal("stream state encode∘decode is not idempotent")
	}
	if got.Batch != 5 || len(got.Entries) != 2 || got.Entries[0].Flow.Cardinality() != 2 {
		t.Fatalf("decoded state diverged: %+v", got)
	}

	// Structural validation: out-of-range adjacency rejects.
	bad := st
	bad.Adjacency = [][]int{{7}, {0}}
	if _, err := DecodeStreamState(EncodeStreamState(bad)); err == nil {
		t.Error("out-of-range adjacency neighbor accepted")
	}
	// Standing batches must precede the batch index.
	bad = st
	bad.Entries = []StreamEntry{{Batch: 9, Flow: testFlow(1)}}
	if _, err := DecodeStreamState(EncodeStreamState(bad)); err == nil {
		t.Error("standing entry from the future accepted")
	}
}

func TestServerStateCodecIdempotent(t *testing.T) {
	ds := testBatch(2)
	st := ServerState{
		Batches: 9,
		Trajs:   ds.Trajectories,
		Fragments: []traj.TFragment{{
			Traj: 20, Seg: 3, Index: 0,
			Points: []traj.Location{{Seg: 3, Pt: geo.Point{X: 1, Y: 2}, Time: 0, Junction: roadnet.NoNode}},
		}},
	}
	b1 := EncodeServerState(st)
	got, err := DecodeServerState(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, EncodeServerState(got)) {
		t.Fatal("server state encode∘decode is not idempotent")
	}
	if got.Batches != 9 || len(got.Trajs) != 2 || len(got.Fragments) != 1 {
		t.Fatalf("decoded server state diverged: %+v", got)
	}
}
