package hotspot

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/mapgen"
	"repro/internal/mobisim"
	"repro/internal/traj"
)

func TestDetectRecoversSimulatedHotspots(t *testing.T) {
	g, err := mapgen.Generate(mapgen.Config{
		Name: "hs", TargetJunctions: 400, TargetSegments: 560,
		AvgSegLenM: 150, MaxDegree: 6, Seed: 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := mobisim.New(g)
	cfg := mobisim.DefaultConfig("hs", 150, 6)
	ds, layout, err := sim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found, err := Detect(ds, Config{CellSize: 300, TopK: 4, Source: TripStarts})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) == 0 {
		t.Fatal("no hotspots detected")
	}
	// Each configured spawn hotspot must have a detected hotspot within
	// the hotspot radius plus grid resolution.
	for _, h := range layout.Hotspots {
		pt := g.Node(h).Pt
		best := 1e18
		for _, f := range found {
			if d := f.Center.Dist(pt); d < best {
				best = d
			}
		}
		if best > cfg.HotspotRadius+600 {
			t.Errorf("configured hotspot at %v missed; nearest detection %v m away", pt, best)
		}
	}
}

func TestDetectEndpointsFindDestinations(t *testing.T) {
	g, err := mapgen.Generate(mapgen.Config{
		Name: "hs2", TargetJunctions: 400, TargetSegments: 560,
		AvgSegLenM: 150, MaxDegree: 6, Seed: 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := mobisim.New(g)
	ds, layout, err := sim.Simulate(mobisim.DefaultConfig("hs2", 150, 6))
	if err != nil {
		t.Fatal(err)
	}
	found, err := Detect(ds, Config{CellSize: 300, TopK: 6, Source: TripEndpoints})
	if err != nil {
		t.Fatal(err)
	}
	// Destinations attract many trips each; at least two of the three
	// should surface among the top endpoint hotspots.
	hits := 0
	for _, d := range layout.Destinations {
		pt := g.Node(d).Pt
		for _, f := range found {
			if f.Center.Dist(pt) < 700 {
				hits++
				break
			}
		}
	}
	if hits < 2 {
		t.Errorf("only %d of %d destinations detected among %d hotspots", hits, len(layout.Destinations), len(found))
	}
}

func TestDetectSyntheticBlobs(t *testing.T) {
	var ds traj.Dataset
	mk := func(id traj.ID, at geo.Point) traj.Trajectory {
		return traj.Trajectory{ID: id, Points: []traj.Location{
			traj.Sample(0, at, 0),
			traj.Sample(0, at.Add(geo.Pt(5, 5)), 10),
		}}
	}
	// 10 trips from (0,0)-ish, 5 from (5000,5000)-ish, 1 stray.
	id := traj.ID(0)
	for i := 0; i < 10; i++ {
		ds.Trajectories = append(ds.Trajectories, mk(id, geo.Pt(float64(i)*10, 0)))
		id++
	}
	for i := 0; i < 5; i++ {
		ds.Trajectories = append(ds.Trajectories, mk(id, geo.Pt(5000+float64(i)*10, 5000)))
		id++
	}
	ds.Trajectories = append(ds.Trajectories, mk(id, geo.Pt(-9000, 9000)))

	found, err := Detect(ds, Config{CellSize: 200, TopK: 2, Source: TripStarts})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 2 {
		t.Fatalf("hotspots = %d, want 2", len(found))
	}
	// Strongest first.
	if found[0].Weight < found[1].Weight {
		t.Error("hotspots not sorted by weight")
	}
	if found[0].Center.Dist(geo.Pt(45, 0)) > 300 {
		t.Errorf("strongest hotspot at %v, want near (45,0)", found[0].Center)
	}
	if found[1].Center.Dist(geo.Pt(5020, 5000)) > 300 {
		t.Errorf("second hotspot at %v, want near (5020,5000)", found[1].Center)
	}
	if found[0].Share <= found[1].Share || found[0].Share > 1 {
		t.Errorf("shares = %v, %v", found[0].Share, found[1].Share)
	}
}

func TestDetectValidation(t *testing.T) {
	ds := traj.Dataset{Trajectories: []traj.Trajectory{{
		ID:     1,
		Points: []traj.Location{traj.Sample(0, geo.Pt(0, 0), 0)},
	}}}
	if _, err := Detect(ds, Config{CellSize: 0}); err == nil {
		t.Error("zero cell size accepted")
	}
	if _, err := Detect(ds, Config{CellSize: 100, TopK: -1}); err == nil {
		t.Error("negative topK accepted")
	}
	if _, err := Detect(traj.Dataset{}, Config{CellSize: 100}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Detect(ds, Config{CellSize: 100, Source: Source(9)}); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestDetectSuppressionRadius(t *testing.T) {
	// Two nearby blobs merge under a large radius.
	var ds traj.Dataset
	for i := 0; i < 10; i++ {
		ds.Trajectories = append(ds.Trajectories, traj.Trajectory{
			ID: traj.ID(i),
			Points: []traj.Location{
				traj.Sample(0, geo.Pt(float64(i%2)*400, 0), 0),
			},
		})
	}
	tight, err := Detect(ds, Config{CellSize: 100, Radius: 150, Source: TripStarts})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Detect(ds, Config{CellSize: 100, Radius: 2000, Source: TripStarts})
	if err != nil {
		t.Fatal(err)
	}
	if len(tight) < 2 {
		t.Errorf("tight radius found %d hotspots, want 2", len(tight))
	}
	if len(loose) != 1 {
		t.Errorf("loose radius found %d hotspots, want 1", len(loose))
	}
}
