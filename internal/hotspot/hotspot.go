// Package hotspot discovers dense areas of a trajectory dataset — the
// "hotspots" the paper's Fig 3 visualization marks as the regions
// where trips concentrate. Knowing hotspots matters to the same
// location-based applications NEAT targets (terminal arrangement in
// transit planning, store placement in advertising), and the detector
// doubles as a validation tool: on simulated data it should recover
// the generator's configured spawn areas.
//
// Detection is grid-based kernel density over trip endpoints (or all
// samples), followed by greedy non-maximum suppression so the returned
// hotspots are spatially distinct.
package hotspot

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/traj"
)

// Source selects which samples contribute to the density field.
type Source uint8

const (
	// TripEndpoints weighs only first and last samples: where trips
	// start and end (spawn areas and destinations).
	TripEndpoints Source = iota
	// TripStarts weighs only first samples (spawn areas).
	TripStarts
	// AllSamples weighs every sample: where objects spend time.
	AllSamples
)

// Config parameterizes detection.
type Config struct {
	// CellSize is the density grid resolution in meters.
	CellSize float64
	// Radius is the non-maximum suppression radius: returned hotspots
	// are at least this far apart. Zero selects 4x CellSize.
	Radius float64
	// TopK caps the number of hotspots returned; 0 means no cap (all
	// local maxima above the mean density).
	TopK int
	// Source selects the contributing samples.
	Source Source
}

func (c Config) withDefaults() Config {
	if c.Radius <= 0 {
		c.Radius = 4 * c.CellSize
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.CellSize <= 0 {
		return fmt.Errorf("hotspot: cell size must be positive, got %g", c.CellSize)
	}
	if c.TopK < 0 {
		return fmt.Errorf("hotspot: topK must be non-negative, got %d", c.TopK)
	}
	return nil
}

// Hotspot is one detected dense area.
type Hotspot struct {
	// Center is the density-weighted centroid of the area.
	Center geo.Point
	// Weight is the accumulated sample weight in the area.
	Weight float64
	// Share is Weight divided by the total weight of all samples.
	Share float64
}

// Detect finds hotspots in the dataset.
func Detect(ds traj.Dataset, cfg Config) ([]Hotspot, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	type sample struct {
		pt geo.Point
		w  float64
	}
	var samples []sample
	for _, tr := range ds.Trajectories {
		if len(tr.Points) == 0 {
			continue
		}
		switch cfg.Source {
		case TripStarts:
			samples = append(samples, sample{tr.Points[0].Pt, 1})
		case TripEndpoints:
			samples = append(samples, sample{tr.Points[0].Pt, 1})
			if len(tr.Points) > 1 {
				samples = append(samples, sample{tr.Points[len(tr.Points)-1].Pt, 1})
			}
		case AllSamples:
			for _, p := range tr.Points {
				samples = append(samples, sample{p.Pt, 1})
			}
		default:
			return nil, fmt.Errorf("hotspot: unknown source %d", cfg.Source)
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("hotspot: dataset has no samples")
	}

	bounds := geo.EmptyRect()
	var totalW float64
	for _, s := range samples {
		bounds = bounds.Extend(s.pt)
		totalW += s.w
	}
	bounds = bounds.Expand(cfg.CellSize)
	nx := int(math.Ceil(bounds.Width()/cfg.CellSize)) + 1
	ny := int(math.Ceil(bounds.Height()/cfg.CellSize)) + 1

	// Accumulate density with a 3x3 triangular kernel so hotspots
	// straddling cell borders are not split.
	weight := make([]float64, nx*ny)
	sumX := make([]float64, nx*ny)
	sumY := make([]float64, nx*ny)
	cellOf := func(p geo.Point) (int, int) {
		return int((p.X - bounds.Min.X) / cfg.CellSize), int((p.Y - bounds.Min.Y) / cfg.CellSize)
	}
	for _, s := range samples {
		cx, cy := cellOf(s.pt)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				x, y := cx+dx, cy+dy
				if x < 0 || x >= nx || y < 0 || y >= ny {
					continue
				}
				k := s.w
				if dx != 0 || dy != 0 {
					k *= 0.35
				}
				idx := y*nx + x
				weight[idx] += k
				sumX[idx] += k * s.pt.X
				sumY[idx] += k * s.pt.Y
			}
		}
	}

	// Candidate cells sorted by weight, greedily suppressed.
	type cand struct {
		idx int
		w   float64
	}
	var mean float64
	occupied := 0
	for _, w := range weight {
		if w > 0 {
			mean += w
			occupied++
		}
	}
	if occupied > 0 {
		mean /= float64(occupied)
	}
	var cands []cand
	for idx, w := range weight {
		if w > mean {
			cands = append(cands, cand{idx, w})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].idx < cands[j].idx
	})

	var out []Hotspot
	for _, c := range cands {
		center := geo.Pt(sumX[c.idx]/weight[c.idx], sumY[c.idx]/weight[c.idx])
		tooClose := false
		for _, h := range out {
			if h.Center.Dist(center) < cfg.Radius {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		out = append(out, Hotspot{Center: center, Weight: c.w, Share: c.w / totalW})
		if cfg.TopK > 0 && len(out) >= cfg.TopK {
			break
		}
	}
	return out, nil
}
