package spatial

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

func buildTestGrid(t testing.TB, w, h int, spacing float64) *roadnet.Graph {
	t.Helper()
	var b roadnet.Builder
	ids := make([]roadnet.NodeID, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ids[y*w+x] = b.AddJunction(geo.Pt(float64(x)*spacing, float64(y)*spacing))
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if _, err := b.AddSegment(ids[y*w+x], ids[y*w+x+1], roadnet.SegmentOpts{}); err != nil {
					t.Fatal(err)
				}
			}
			if y+1 < h {
				if _, err := b.AddSegment(ids[y*w+x], ids[(y+1)*w+x], roadnet.SegmentOpts{}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// bruteNearest is the reference implementation for oracle checks.
func bruteNearest(g *roadnet.Graph, p geo.Point) (roadnet.SegID, float64) {
	best := roadnet.NoSeg
	bestD := 1e18
	for _, s := range g.Segments() {
		_, d := g.Locate(s.ID, p)
		if d < bestD || (d == bestD && s.ID < best) {
			best, bestD = s.ID, d
		}
	}
	return best, bestD
}

func TestGridNearestAgainstBruteForce(t *testing.T) {
	g := buildTestGrid(t, 8, 8, 100)
	grid, err := NewGrid(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		p := geo.Pt(rng.Float64()*800-50, rng.Float64()*800-50)
		loc, d, ok := grid.Nearest(p)
		if !ok {
			t.Fatal("Nearest returned !ok on non-empty graph")
		}
		_, wantD := bruteNearest(g, p)
		if d != wantD {
			t.Fatalf("Nearest(%v) dist = %v, brute force = %v (seg %d)", p, d, wantD, loc.Seg)
		}
	}
}

func TestGridKNearest(t *testing.T) {
	g := buildTestGrid(t, 5, 5, 100)
	grid, err := NewGrid(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	cands := grid.KNearest(geo.Pt(150, 150), 4)
	if len(cands) != 4 {
		t.Fatalf("KNearest returned %d", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Dist < cands[i-1].Dist {
			t.Error("KNearest not sorted by distance")
		}
	}
	if got := grid.KNearest(geo.Pt(0, 0), 0); got != nil {
		t.Error("KNearest(0) should return nil")
	}
}

func TestGridWithin(t *testing.T) {
	g := buildTestGrid(t, 5, 5, 100)
	grid, err := NewGrid(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Query at a junction: 4 incident segments at distance 0, others
	// at >= 50.
	got := grid.Within(geo.Pt(200, 200), 49)
	if len(got) != 4 {
		t.Fatalf("Within(junction, 49) = %d segments, want 4", len(got))
	}
	for _, c := range got {
		if c.Dist != 0 {
			t.Errorf("incident segment at dist %v", c.Dist)
		}
	}
	// Wider radius picks up the surrounding ring.
	wide := grid.Within(geo.Pt(200, 200), 100)
	if len(wide) <= 4 {
		t.Errorf("Within(junction, 100) = %d segments", len(wide))
	}
	// Far away point: nothing.
	if got := grid.Within(geo.Pt(10000, 10000), 50); len(got) != 0 {
		t.Errorf("far Within = %d", len(got))
	}
}

func TestGridRejectsBadInput(t *testing.T) {
	g := buildTestGrid(t, 2, 2, 100)
	if _, err := NewGrid(g, 0); err == nil {
		t.Error("zero cell size accepted")
	}
	if _, err := NewGrid(g, -5); err == nil {
		t.Error("negative cell size accepted")
	}
}

func TestRTreeSearchAgainstBruteForce(t *testing.T) {
	g := buildTestGrid(t, 8, 8, 100)
	rt, err := NewRTree(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		q := geo.RectFromPoints(
			geo.Pt(rng.Float64()*700, rng.Float64()*700),
			geo.Pt(rng.Float64()*700, rng.Float64()*700),
		)
		got := rt.Search(q)
		want := map[roadnet.SegID]bool{}
		for _, s := range g.Segments() {
			gs := g.SegmentGeometry(s.ID)
			if geo.RectFromPoints(gs.A, gs.B).Intersects(q) {
				want[s.ID] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Search(%v) = %d segments, want %d", q, len(got), len(want))
		}
		for _, sid := range got {
			if !want[sid] {
				t.Fatalf("Search returned %d which does not intersect", sid)
			}
		}
	}
}

func TestRTreeSearchPoint(t *testing.T) {
	g := buildTestGrid(t, 5, 5, 100)
	rt, err := NewRTree(g, 0) // default capacity
	if err != nil {
		t.Fatal(err)
	}
	got := rt.SearchPoint(geo.Pt(200, 200), 49)
	if len(got) != 4 {
		t.Fatalf("SearchPoint = %d, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Error("SearchPoint not sorted")
		}
	}
}

func TestRTreeStructure(t *testing.T) {
	g := buildTestGrid(t, 10, 10, 100)
	rt, err := NewRTree(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != g.NumSegments() {
		t.Errorf("Len = %d, want %d", rt.Len(), g.NumSegments())
	}
	if h := rt.Height(); h < 2 {
		t.Errorf("Height = %d, want >= 2 for 180 segments at capacity 8", h)
	}
}

func BenchmarkGridNearest(b *testing.B) {
	g := buildTestGrid(b, 30, 30, 100)
	grid, err := NewGrid(g, 100)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid.Nearest(geo.Pt(rng.Float64()*3000, rng.Float64()*3000))
	}
}
