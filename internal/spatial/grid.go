// Package spatial provides spatial indexes over road-network segments:
// a uniform grid for fast nearest-segment lookups (the map matcher's
// candidate generator) and an STR-packed R-tree for range queries over
// arbitrary rectangles.
package spatial

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// Grid is a uniform spatial hash of road segments. It answers
// nearest-segment and radius queries by scanning expanding rings of
// cells around the query point.
type Grid struct {
	g        *roadnet.Graph
	cellSize float64
	origin   geo.Point
	nx, ny   int
	cells    [][]roadnet.SegID
}

// NewGrid indexes all segments of g into cells of the given size in
// meters. A cell size near the average segment length (Table I: 125 to
// 170 m) keeps both the cell count and the per-cell occupancy small.
func NewGrid(g *roadnet.Graph, cellSize float64) (*Grid, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("spatial: cell size must be positive, got %g", cellSize)
	}
	b := g.Bounds()
	if b.Empty() {
		return nil, fmt.Errorf("spatial: graph has empty bounds")
	}
	// Pad by one cell so boundary points fall inside the grid.
	b = b.Expand(cellSize)
	gr := &Grid{
		g:        g,
		cellSize: cellSize,
		origin:   b.Min,
		nx:       int(math.Ceil(b.Width()/cellSize)) + 1,
		ny:       int(math.Ceil(b.Height()/cellSize)) + 1,
	}
	gr.cells = make([][]roadnet.SegID, gr.nx*gr.ny)
	for _, s := range g.Segments() {
		gr.insert(s.ID)
	}
	return gr, nil
}

func (gr *Grid) cellOf(p geo.Point) (int, int) {
	cx := int((p.X - gr.origin.X) / gr.cellSize)
	cy := int((p.Y - gr.origin.Y) / gr.cellSize)
	return cx, cy
}

func (gr *Grid) clampCell(cx, cy int) (int, int) {
	if cx < 0 {
		cx = 0
	}
	if cx >= gr.nx {
		cx = gr.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= gr.ny {
		cy = gr.ny - 1
	}
	return cx, cy
}

func (gr *Grid) insert(sid roadnet.SegID) {
	gs := gr.g.SegmentGeometry(sid)
	r := geo.RectFromPoints(gs.A, gs.B)
	x0, y0 := gr.clampCell(gr.cellOf(r.Min))
	x1, y1 := gr.clampCell(gr.cellOf(r.Max))
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			idx := cy*gr.nx + cx
			// Only keep the segment in cells its geometry actually
			// approaches, to bound per-cell occupancy.
			cell := geo.Rect{
				Min: geo.Pt(gr.origin.X+float64(cx)*gr.cellSize, gr.origin.Y+float64(cy)*gr.cellSize),
				Max: geo.Pt(gr.origin.X+float64(cx+1)*gr.cellSize, gr.origin.Y+float64(cy+1)*gr.cellSize),
			}
			if gs.DistToPoint(cell.Center()) <= gr.cellSize {
				gr.cells[idx] = append(gr.cells[idx], sid)
			}
		}
	}
}

// Nearest returns the segment closest to p, the snapped location on it,
// and the snap distance. ok is false only for an index over an empty
// graph.
func (gr *Grid) Nearest(p geo.Point) (loc roadnet.Location, dist float64, ok bool) {
	locs := gr.KNearest(p, 1)
	if len(locs) == 0 {
		return roadnet.Location{}, math.Inf(1), false
	}
	l := locs[0]
	return l.Loc, l.Dist, true
}

// Candidate is a segment candidate returned by KNearest / Within.
type Candidate struct {
	Loc  roadnet.Location
	Dist float64
}

// KNearest returns up to k segments closest to p, nearest first.
func (gr *Grid) KNearest(p geo.Point, k int) []Candidate {
	if k <= 0 {
		return nil
	}
	cx, cy := gr.clampCell(gr.cellOf(p))
	maxRing := gr.nx
	if gr.ny > maxRing {
		maxRing = gr.ny
	}
	best := make([]Candidate, 0, k)
	seen := make(map[roadnet.SegID]struct{})
	consider := func(sid roadnet.SegID) {
		if _, dup := seen[sid]; dup {
			return
		}
		seen[sid] = struct{}{}
		loc, d := gr.g.Locate(sid, p)
		// Insertion sort into the k-best list.
		if len(best) < k || d < best[len(best)-1].Dist {
			c := Candidate{Loc: loc, Dist: d}
			pos := len(best)
			for pos > 0 && best[pos-1].Dist > d {
				pos--
			}
			if len(best) < k {
				best = append(best, Candidate{})
			}
			copy(best[pos+1:], best[pos:])
			best[pos] = c
		}
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once we have k results, stop when the ring's minimum possible
		// distance exceeds the current kth distance.
		if len(best) == k {
			minPossible := float64(ring-1) * gr.cellSize
			if minPossible > best[len(best)-1].Dist {
				break
			}
		}
		gr.forEachRingCell(cx, cy, ring, func(idx int) {
			for _, sid := range gr.cells[idx] {
				consider(sid)
			}
		})
	}
	return best
}

// Within returns all segments whose snapped distance to p is at most
// radius, nearest first.
func (gr *Grid) Within(p geo.Point, radius float64) []Candidate {
	cx, cy := gr.clampCell(gr.cellOf(p))
	rings := int(math.Ceil(radius/gr.cellSize)) + 1
	var out []Candidate
	seen := make(map[roadnet.SegID]struct{})
	for ring := 0; ring <= rings; ring++ {
		gr.forEachRingCell(cx, cy, ring, func(idx int) {
			for _, sid := range gr.cells[idx] {
				if _, dup := seen[sid]; dup {
					continue
				}
				seen[sid] = struct{}{}
				loc, d := gr.g.Locate(sid, p)
				if d <= radius {
					out = append(out, Candidate{Loc: loc, Dist: d})
				}
			}
		})
	}
	sortCandidates(out)
	return out
}

func sortCandidates(cs []Candidate) {
	// Small result sets dominate; insertion sort keeps this allocation
	// free and deterministic (ties broken by segment id).
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0; j-- {
			a, b := cs[j-1], cs[j]
			if b.Dist < a.Dist || (b.Dist == a.Dist && b.Loc.Seg < a.Loc.Seg) {
				cs[j-1], cs[j] = b, a
			} else {
				break
			}
		}
	}
}

// forEachRingCell visits the cells on the square ring at Chebyshev
// distance ring from (cx, cy), clipped to the grid.
func (gr *Grid) forEachRingCell(cx, cy, ring int, visit func(idx int)) {
	if ring == 0 {
		visit(cy*gr.nx + cx)
		return
	}
	x0, x1 := cx-ring, cx+ring
	y0, y1 := cy-ring, cy+ring
	for x := x0; x <= x1; x++ {
		if x < 0 || x >= gr.nx {
			continue
		}
		if y0 >= 0 {
			visit(y0*gr.nx + x)
		}
		if y1 < gr.ny {
			visit(y1*gr.nx + x)
		}
	}
	for y := y0 + 1; y < y1; y++ {
		if y < 0 || y >= gr.ny {
			continue
		}
		if x0 >= 0 {
			visit(y*gr.nx + x0)
		}
		if x1 < gr.nx {
			visit(y*gr.nx + x1)
		}
	}
}
