package spatial

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
)

// PointGrid is a uniform spatial hash over a fixed set of points,
// answering radius queries by index. It complements Grid (which indexes
// road segments): Phase 3's batched ε-graph builder uses it to restrict
// each one-to-many expansion to the flow-endpoint junctions whose
// Euclidean distance can possibly be within ε — dE <= dN, so points
// outside the Euclidean radius can never pass the network-distance
// predicate.
type PointGrid struct {
	pts      []geo.Point
	cellSize float64
	origin   geo.Point
	nx, ny   int
	cells    [][]int32
}

// NewPointGrid indexes pts into cells of the given size in meters. An
// empty point set yields a grid whose queries return nothing.
func NewPointGrid(pts []geo.Point, cellSize float64) (*PointGrid, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("spatial: cell size must be positive, got %g", cellSize)
	}
	pg := &PointGrid{pts: pts, cellSize: cellSize}
	if len(pts) == 0 {
		return pg, nil
	}
	b := geo.RectFromPoints(pts...).Expand(cellSize)
	pg.origin = b.Min
	pg.nx = int(math.Ceil(b.Width()/cellSize)) + 1
	pg.ny = int(math.Ceil(b.Height()/cellSize)) + 1
	pg.cells = make([][]int32, pg.nx*pg.ny)
	for i, p := range pts {
		cx, cy := pg.cellOf(p)
		idx := cy*pg.nx + cx
		pg.cells[idx] = append(pg.cells[idx], int32(i))
	}
	return pg, nil
}

func (pg *PointGrid) cellOf(p geo.Point) (int, int) {
	cx := int((p.X - pg.origin.X) / pg.cellSize)
	cy := int((p.Y - pg.origin.Y) / pg.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= pg.nx {
		cx = pg.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= pg.ny {
		cy = pg.ny - 1
	}
	return cx, cy
}

// Within returns the indices (ascending) of all points whose Euclidean
// distance to p is at most radius. The comparison is inclusive,
// matching the ε-neighborhood predicate's d <= ε.
func (pg *PointGrid) Within(p geo.Point, radius float64) []int {
	if len(pg.pts) == 0 || radius < 0 {
		return nil
	}
	x0, y0 := pg.cellOf(geo.Pt(p.X-radius, p.Y-radius))
	x1, y1 := pg.cellOf(geo.Pt(p.X+radius, p.Y+radius))
	var out []int
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, i := range pg.cells[cy*pg.nx+cx] {
				if pg.pts[i].Dist(p) <= radius {
					out = append(out, int(i))
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// Len returns the number of indexed points.
func (pg *PointGrid) Len() int { return len(pg.pts) }
