package spatial

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
)

func TestPointGridWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := make([]geo.Point, 300)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*5000, rng.Float64()*3000)
	}
	pg, err := NewPointGrid(pts, 250)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Len() != len(pts) {
		t.Fatalf("Len = %d", pg.Len())
	}
	for trial := 0; trial < 50; trial++ {
		q := geo.Pt(rng.Float64()*6000-500, rng.Float64()*4000-500)
		radius := rng.Float64() * 1200
		var want []int
		for i, p := range pts {
			if p.Dist(q) <= radius {
				want = append(want, i)
			}
		}
		got := pg.Within(q, radius)
		if !sort.IntsAreSorted(got) {
			t.Fatalf("trial %d: result not sorted", trial)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d hits, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: hit %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestPointGridEdgeCases(t *testing.T) {
	if _, err := NewPointGrid(nil, 0); err == nil {
		t.Error("zero cell size accepted")
	}
	empty, err := NewPointGrid(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.Within(geo.Pt(0, 0), 1000); got != nil {
		t.Errorf("empty grid returned %v", got)
	}
	one, err := NewPointGrid([]geo.Point{geo.Pt(10, 10)}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := one.Within(geo.Pt(10, 10), 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("exact-radius query = %v, want [0]", got)
	}
	if got := one.Within(geo.Pt(10, 10), -1); got != nil {
		t.Errorf("negative radius returned %v", got)
	}
}
