package spatial

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// RTree is a static, STR-packed (Sort-Tile-Recursive) R-tree over road
// segments. Because road networks in this repository are immutable once
// built, bulk loading yields near-optimal packing without the
// complexity of dynamic insertion.
type RTree struct {
	g     *roadnet.Graph
	nodes []rtreeNode
	root  int
	leafM int
}

type rtreeNode struct {
	bounds   geo.Rect
	children []int           // internal node: child node indexes
	items    []roadnet.SegID // leaf node: segment ids
}

const defaultLeafCapacity = 16

// NewRTree bulk-loads all segments of g into an STR-packed R-tree.
// leafCapacity <= 0 selects the default of 16 entries per node.
func NewRTree(g *roadnet.Graph, leafCapacity int) (*RTree, error) {
	if leafCapacity <= 0 {
		leafCapacity = defaultLeafCapacity
	}
	n := g.NumSegments()
	if n == 0 {
		return nil, fmt.Errorf("spatial: cannot build R-tree over empty graph")
	}
	t := &RTree{g: g, leafM: leafCapacity}

	type entry struct {
		sid    roadnet.SegID
		bounds geo.Rect
		center geo.Point
	}
	entries := make([]entry, n)
	for i, s := range g.Segments() {
		gs := g.SegmentGeometry(s.ID)
		b := geo.RectFromPoints(gs.A, gs.B)
		entries[i] = entry{sid: s.ID, bounds: b, center: b.Center()}
	}

	// STR: sort by center x, slice into vertical strips, sort each strip
	// by center y, pack runs of leafCapacity into leaves.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].center.X != entries[j].center.X {
			return entries[i].center.X < entries[j].center.X
		}
		return entries[i].sid < entries[j].sid
	})
	leavesNeeded := (n + leafCapacity - 1) / leafCapacity
	stripCount := intSqrtCeil(leavesNeeded)
	perStrip := stripCount * leafCapacity

	var level []int
	for start := 0; start < n; start += perStrip {
		end := start + perStrip
		if end > n {
			end = n
		}
		strip := entries[start:end]
		sort.Slice(strip, func(i, j int) bool {
			if strip[i].center.Y != strip[j].center.Y {
				return strip[i].center.Y < strip[j].center.Y
			}
			return strip[i].sid < strip[j].sid
		})
		for ls := 0; ls < len(strip); ls += leafCapacity {
			le := ls + leafCapacity
			if le > len(strip) {
				le = len(strip)
			}
			leaf := rtreeNode{bounds: geo.EmptyRect()}
			for _, e := range strip[ls:le] {
				leaf.items = append(leaf.items, e.sid)
				leaf.bounds = leaf.bounds.Union(e.bounds)
			}
			level = append(level, len(t.nodes))
			t.nodes = append(t.nodes, leaf)
		}
	}

	// Pack upper levels until a single root remains.
	for len(level) > 1 {
		var next []int
		for start := 0; start < len(level); start += leafCapacity {
			end := start + leafCapacity
			if end > len(level) {
				end = len(level)
			}
			node := rtreeNode{bounds: geo.EmptyRect()}
			for _, child := range level[start:end] {
				node.children = append(node.children, child)
				node.bounds = node.bounds.Union(t.nodes[child].bounds)
			}
			next = append(next, len(t.nodes))
			t.nodes = append(t.nodes, node)
		}
		level = next
	}
	t.root = level[0]
	return t, nil
}

func intSqrtCeil(n int) int {
	if n <= 1 {
		return 1
	}
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// Search returns the ids of all segments whose bounding boxes intersect
// query, in ascending sid order.
func (t *RTree) Search(query geo.Rect) []roadnet.SegID {
	var out []roadnet.SegID
	var walk func(idx int)
	walk = func(idx int) {
		node := &t.nodes[idx]
		if !node.bounds.Intersects(query) {
			return
		}
		if node.items != nil {
			for _, sid := range node.items {
				gs := t.g.SegmentGeometry(sid)
				if geo.RectFromPoints(gs.A, gs.B).Intersects(query) {
					out = append(out, sid)
				}
			}
			return
		}
		for _, c := range node.children {
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SearchPoint returns segments whose snapped distance to p is at most
// radius, nearest first. It refines the box search with exact
// point-segment distances.
func (t *RTree) SearchPoint(p geo.Point, radius float64) []Candidate {
	query := geo.RectFromPoints(p).Expand(radius)
	var out []Candidate
	for _, sid := range t.Search(query) {
		loc, d := t.g.Locate(sid, p)
		if d <= radius {
			out = append(out, Candidate{Loc: loc, Dist: d})
		}
	}
	sortCandidates(out)
	return out
}

// Height returns the number of levels in the tree (1 for a single
// leaf), useful for verifying packing quality in tests.
func (t *RTree) Height() int {
	h := 1
	idx := t.root
	for t.nodes[idx].items == nil {
		idx = t.nodes[idx].children[0]
		h++
	}
	return h
}

// Len returns the number of indexed segments.
func (t *RTree) Len() int { return t.g.NumSegments() }
