package main

import (
	"context"
	"testing"
)

func TestRunArgValidation(t *testing.T) {
	cases := [][]string{
		{},                             // neither -map nor -region
		{"-region", "XX"},              // unknown region
		{"-map", "does-not-exist.csv"}, // unreadable map
		{"-region", "ATL", "-badflag"}, // unknown flag
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("neatserver %v succeeded, want error", args)
		}
	}
}
