package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/mapgen"
	"repro/internal/mobisim"
	"repro/internal/obs"
	"repro/internal/server"
)

// smokeApp boots the full neatserver handler stack (API + metrics +
// pprof) over a small generated map, mirroring what CI's smoke job
// asserts against the real binary.
func smokeApp(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	g, err := mapgen.Generate(mapgen.Config{
		Name: "smoke", TargetJunctions: 200, TargetSegments: 280,
		AvgSegLenM: 150, MaxDegree: 6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := server.New(g, server.Config{DataNodes: 2, Obs: reg})
	ts := httptest.NewServer(newMux(srv, reg))
	t.Cleanup(ts.Close)

	// Ingest a small batch so pipeline/server series materialize.
	ds, _, err := mobisim.New(g).Simulate(mobisim.DefaultConfig("smoke", 30, 3))
	if err != nil {
		t.Fatal(err)
	}
	c := server.NewClient(ts.URL, ts.Client())
	if _, err := c.Ingest(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Clusters(context.Background(), server.ClusterQuery{Level: "opt", Epsilon: 1500, MinCard: 3}); err != nil {
		t.Fatal(err)
	}
	return ts, reg
}

func TestServerSmoke(t *testing.T) {
	ts, _ := smokeApp(t)
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, metrics := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	// Pipeline-, server-, and HTTP-level series must all be present.
	for _, name := range []string{
		"neat_runs_total",
		"neat_phase_seconds_bucket",
		"neat_sp_queries_total",
		"server_ingest_trajectories_total",
		"server_cache_misses_total",
		"http_request_duration_seconds_bucket",
		"http_requests_total",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}

	code, vars := get("/debug/vars")
	if code != 200 || !json.Valid([]byte(vars)) {
		t.Errorf("/debug/vars: status %d, valid JSON %v", code, json.Valid([]byte(vars)))
	}

	code, stats := get("/v1/stats")
	if code != 200 || !strings.Contains(stats, "go_version") {
		t.Errorf("/v1/stats: status %d body %s", code, stats)
	}

	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
}

// TestGracefulShutdown cancels the serve context mid-flight and
// verifies the in-flight request completes, the listener closes
// cleanly, and serve returns without error.
func TestGracefulShutdown(t *testing.T) {
	reg := obs.NewRegistry()
	release := make(chan struct{})
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		w.Write([]byte("done"))
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: obs.Middleware(reg, mux, "/slow")}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() {
		// Mirror serve() but over a pre-bound listener so the test
		// knows the address; Serve vs ListenAndServe is the only delta.
		errc := make(chan error, 1)
		go func() { errc <- httpSrv.Serve(ln) }()
		select {
		case err := <-errc:
			serveErr <- err
			return
		case <-ctx.Done():
		}
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		serveErr <- httpSrv.Shutdown(sctx)
	}()

	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != 200 {
				err = io.ErrUnexpectedEOF
			}
		}
		reqDone <- err
	}()
	<-started
	cancel() // "signal" arrives while /slow is in flight
	time.Sleep(50 * time.Millisecond)
	close(release) // the handler finishes during the drain window

	if err := <-reqDone; err != nil {
		t.Errorf("in-flight request failed across shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain")
	}
	if got := reg.Counter("http_requests_total", obs.L("route", "/slow"), obs.L("code", "200")).Value(); got != 1 {
		t.Errorf("drained request not recorded: %d", got)
	}
}
