// Command neatserver runs the NEAT trajectory-clustering service of
// §II-C over a road network: clients POST trajectories and GET
// clustering results. The process is fully observable: every request,
// cache lookup, and pipeline run records into an internal/obs registry
// scraped at /metrics, and SIGINT/SIGTERM drain in-flight requests
// before exit.
//
// Usage:
//
//	neatserver -map map.csv [-addr :8080] [-datanodes 4] [-workers -1] [-shards 4] [-cache-entries 262144]
//	neatserver -region ATL -scale 0.1 [-addr :8080] [-drain 10s] [-max-inflight 16] [-request-timeout 30s]
//	neatserver -region ATL -data-dir /var/lib/neat [-fsync always] [-checkpoint-every 8]
//	neatserver -region ATL -max-sessions 32
//	neatserver -region ATL -guard-qps 50 -guard-points-per-sec 100000 -guard-trip-after 5 -guard-watchdog 30s
//
// The -guard-* flags arm per-session tenant-isolation guardrails:
// token-bucket rate limits on ingest requests and points (shed with
// 429 + Retry-After), a circuit breaker that quarantines a session
// after consecutive infra-class ingest failures (writes shed 503,
// reads serve the last-good snapshot flagged stale, and a successful
// probe after the cooldown heals it by replaying its WAL), and a
// watchdog converting stuck ingests into typed failures. Limits can
// be overridden per session at runtime via POST /v1/sessions/limits
// (`neatcli sessions -limits`).
//
// With -data-dir the server is durable: every acknowledged ingest is
// written to a WAL before the response, the dataset is checkpointed
// periodically and on shutdown, and a restart over the same directory
// recovers every acknowledged batch (see /v1/stats' persistence
// block).
//
// API:
//
//	POST /v1/trajectories  {"trajectories":[{"trid":1,"points":[{"sid":0,"x":1,"y":2,"t":0}, ...]}]}
//	GET  /v1/clusters?level=opt&eps=6500&mincard=5
//	GET  /v1/stats
//	GET  /v1/sessions      list tenants; POST creates one, DELETE ?name= removes one
//
// Every data route accepts ?session=<name> to target a tenant created
// via POST /v1/sessions (or recovered from <data-dir>/sessions/ on
// boot); without it the default session answers, exactly as before
// multi-tenancy existed.
//
//	GET  /metrics          Prometheus text exposition
//	GET  /debug/vars       expvar-style JSON exposition
//	GET  /debug/pprof/     net/http/pprof profiling
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/guard"
	"repro/internal/mapgen"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/roadnet"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "neatserver:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("neatserver", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		mapPath   = fs.String("map", "", "road network file (alternative to -region)")
		region    = fs.String("region", "", "generate a preset map: ATL, SJ, or MIA")
		scale     = fs.Float64("scale", 0.1, "scale for -region maps")
		dataNodes = fs.Int("datanodes", 4, "preprocessing data nodes")
		workers   = fs.Int("workers", 0, "Phase 3 refinement workers (0 = serial, -1 = all CPUs)")
		shards    = fs.Int("shards", 0, "road-network shards for Phases 1 and 2 (0 = unsharded; output is identical)")
		cacheEnt  = fs.Int("cache-entries", 0, "distance cache entry budget shared across clustering requests (0 = default budget, <0 = no cache)")
		inflight  = fs.Int("max-inflight", 0, "admission control: concurrent requests served before shedding with 429/503 (0 = 16, <0 = unbounded)")
		maxSess   = fs.Int("max-sessions", 0, "cap on live sessions, the default session included (0 = 16)")
		reqTO     = fs.Duration("request-timeout", 0, "per-request deadline; expired requests degrade to the last-good snapshot or shed with 503 (0 = 30s, <0 = none)")
		drain     = fs.Duration("drain", 10*time.Second, "graceful shutdown timeout for in-flight requests")
		dataDir   = fs.String("data-dir", "", "durable data directory (WAL + checkpoints); empty = in-memory only")
		fsyncPol  = fs.String("fsync", "always", "WAL fsync policy with -data-dir: always, interval, or off")
		ckptEvery = fs.Int("checkpoint-every", 0, "checkpoint the dataset every N ingests with -data-dir (0 = default 8, <0 = only on shutdown)")

		// Tenant-isolation guardrails: per-session defaults, overridable
		// at runtime via POST /v1/sessions/limits.
		guardQPS      = fs.Float64("guard-qps", 0, "per-session ingest requests/sec before shedding 429 (0 = unlimited)")
		guardBurst    = fs.Int("guard-burst", 0, "per-session ingest burst (0 = derived from -guard-qps)")
		guardPPS      = fs.Float64("guard-points-per-sec", 0, "per-session trajectory points/sec before shedding 429 (0 = unlimited)")
		guardPtBurst  = fs.Int("guard-point-burst", 0, "per-session point burst (0 = derived from -guard-points-per-sec)")
		guardTrip     = fs.Int("guard-trip-after", 0, "consecutive infra-class ingest failures that quarantine a session (0 = breaker off)")
		guardCooldown = fs.Duration("guard-cooldown", 0, "quarantine cooldown before a half-open probe (0 = 30s)")
		guardProbes   = fs.Int("guard-probes", 0, "successful probes required to heal a quarantined session (0 = 1)")
		guardWatchdog = fs.Duration("guard-watchdog", 0, "per-ingest watchdog budget; stuck ingests fail typed and count toward the breaker (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *roadnet.Graph
	switch {
	case *mapPath != "":
		f, err := os.Open(*mapPath)
		if err != nil {
			return fmt.Errorf("open map: %w", err)
		}
		defer f.Close()
		g, err = roadnet.Read(f)
		if err != nil {
			return fmt.Errorf("parse map: %w", err)
		}
	case *region != "":
		cfg, ok := mapgen.Presets()[strings.ToUpper(*region)]
		if !ok {
			return fmt.Errorf("unknown region %q", *region)
		}
		if *scale < 1 {
			cfg = cfg.Scaled(*scale)
		}
		var err error
		g, err = mapgen.Generate(cfg)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -map or -region is required")
	}

	reg := obs.NewRegistry()
	scfg := server.Config{
		DataNodes: *dataNodes, Workers: *workers, Shards: *shards, CacheEntries: *cacheEnt,
		MaxInflight: *inflight, MaxSessions: *maxSess, RequestTimeout: *reqTO, Obs: reg,
		Guard: guard.Config{
			Limits: guard.Limits{
				IngestQPS: *guardQPS, IngestBurst: *guardBurst,
				PointsPerSec: *guardPPS, PointBurst: *guardPtBurst,
			},
			Breaker: guard.BreakerConfig{
				TripAfter: *guardTrip, Cooldown: *guardCooldown, ProbeSuccesses: *guardProbes,
			},
			Watchdog: *guardWatchdog,
		},
	}
	if *dataDir != "" {
		pol, err := persist.ParseFsyncPolicy(*fsyncPol)
		if err != nil {
			return err
		}
		scfg.Persist = &persist.Options{Dir: *dataDir, Fsync: pol, CheckpointEvery: *ckptEvery}
	}
	srv, err := server.Open(g, scfg)
	if err != nil {
		return err
	}
	if *dataDir != "" {
		fmt.Printf("neatserver durable in %s (fsync=%s): recovered %d batches\n",
			*dataDir, *fsyncPol, srv.RecoveredBatches())
		for _, sess := range srv.Sessions().List() {
			fmt.Printf("neatserver session %q: %d batches recovered, %d trajectories\n",
				sess.Name(), sess.RecoveredBatches(), len(sess.Current().Trajs))
		}
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           newMux(srv, reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("neatserver listening on %s — %s\n", *addr, roadnet.ComputeStats(g))
	return serve(ctx, httpSrv, srv, reg, *drain)
}

// newMux assembles the full handler: the API (already wrapped in the
// obs middleware by server.Handler), the metrics expositions, and the
// pprof profiling endpoints.
func newMux(srv *server.Server, reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.Handle("/debug/vars", reg.VarsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs httpSrv until it fails or ctx is cancelled (SIGINT or
// SIGTERM in production). On cancellation it drains in-flight requests
// via http.Server.Shutdown bounded by the drain timeout, closes the
// server's durability layer (final checkpoint + WAL flush), then logs
// the final metrics snapshot so a scrape gap around termination loses
// nothing.
func serve(ctx context.Context, httpSrv *http.Server, srv *server.Server, reg *obs.Registry, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "neatserver: signal received, draining in-flight requests (timeout %s)\n", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(sctx)
	if err := srv.Close(); err != nil && shutdownErr == nil {
		shutdownErr = fmt.Errorf("close durability layer: %w", err)
	}
	fmt.Fprintln(os.Stderr, "neatserver: final metrics snapshot:")
	_ = reg.WritePrometheus(os.Stderr)
	if shutdownErr != nil {
		return fmt.Errorf("shutdown: %w", shutdownErr)
	}
	fmt.Fprintln(os.Stderr, "neatserver: shutdown complete")
	return nil
}
