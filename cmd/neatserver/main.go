// Command neatserver runs the NEAT trajectory-clustering service of
// §II-C over a road network: clients POST trajectories and GET
// clustering results.
//
// Usage:
//
//	neatserver -map map.csv [-addr :8080] [-datanodes 4] [-workers -1]
//	neatserver -region ATL -scale 0.1 [-addr :8080]
//
// API:
//
//	POST /v1/trajectories  {"trajectories":[{"trid":1,"points":[{"sid":0,"x":1,"y":2,"t":0}, ...]}]}
//	GET  /v1/clusters?level=opt&eps=6500&mincard=5
//	GET  /v1/stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/mapgen"
	"repro/internal/roadnet"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "neatserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("neatserver", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		mapPath   = fs.String("map", "", "road network file (alternative to -region)")
		region    = fs.String("region", "", "generate a preset map: ATL, SJ, or MIA")
		scale     = fs.Float64("scale", 0.1, "scale for -region maps")
		dataNodes = fs.Int("datanodes", 4, "preprocessing data nodes")
		workers   = fs.Int("workers", 0, "Phase 3 refinement workers (0 = serial, -1 = all CPUs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *roadnet.Graph
	switch {
	case *mapPath != "":
		f, err := os.Open(*mapPath)
		if err != nil {
			return fmt.Errorf("open map: %w", err)
		}
		defer f.Close()
		g, err = roadnet.Read(f)
		if err != nil {
			return fmt.Errorf("parse map: %w", err)
		}
	case *region != "":
		cfg, ok := mapgen.Presets()[strings.ToUpper(*region)]
		if !ok {
			return fmt.Errorf("unknown region %q", *region)
		}
		if *scale < 1 {
			cfg = cfg.Scaled(*scale)
		}
		var err error
		g, err = mapgen.Generate(cfg)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -map or -region is required")
	}

	srv := server.New(g, server.Config{DataNodes: *dataNodes, Workers: *workers})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("neatserver listening on %s — %s\n", *addr, roadnet.ComputeStats(g))
	return httpSrv.ListenAndServe()
}
