package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchRunTables(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scale", "0.02", "-exp", "table1", "-exp", "table3", "-out", t.TempDir()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"table1", "table3", "ATL", "SJ", "PaperFlows"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestBenchRunMarkdown(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "0.02", "-format", "md", "-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "| Region |") {
		t.Errorf("markdown output missing table header:\n%s", out.String())
	}
}

func TestBenchRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "7"}, &out); err == nil {
		t.Error("scale 7 accepted")
	}
	if err := run([]string{"-exp", "fig99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-format", "pdf"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
}
