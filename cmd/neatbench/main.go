// Command neatbench regenerates the tables and figures of the paper's
// evaluation section (§IV) and prints paper-vs-measured rows.
//
// Usage:
//
//	neatbench [-scale 0.1] [-out results/] [-exp fig5] [-exp table1] ...
//	neatbench -scale 0.05 -phasejson results/BENCH_phase_times.json
//	neatbench -scale 0.05 -streamjson BENCH_stream_ingest.json -streamguard 1.5
//	neatbench -scale 0.05 -recoveryjson BENCH_recovery.json
//
// With no -exp flags, every experiment runs in the paper's order;
// -phasejson with no -exp runs only the fixed phase-timing scenario
// and writes the per-phase JSON report (the CI bench artifact);
// -streamjson likewise runs only the steady-state streaming scenario
// (persistent distance cache on vs off) and -streamguard fails the
// process unless the cached mode is at least that factor faster;
// -recoveryjson runs only the crash-recovery scenario (durable
// restart vs cold start, time-to-first-ingest across windows). The
// scale factor shrinks maps and datasets together (see
// internal/experiments); absolute times are machine-dependent, the
// relationships between systems are the reproduction target.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

type expList []string

func (l *expList) String() string { return fmt.Sprint(*l) }
func (l *expList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "neatbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("neatbench", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		scale        = fs.Float64("scale", 0.1, "map and dataset scale factor in (0, 1]")
		out          = fs.String("out", "results", "directory for SVG artifacts")
		format       = fs.String("format", "text", "output format: text or md")
		phaseJSON    = fs.String("phasejson", "", "write the per-phase timing report of the fixed scenario to this JSON path")
		streamJSON   = fs.String("streamjson", "", "write the steady-state stream-ingest report (cached vs uncached) to this JSON path")
		streamGuard  = fs.Float64("streamguard", 0, "fail unless the stream-ingest cached/uncached speedup is at least this factor (0 = no guard; implies the stream scenario runs)")
		recoveryJSON = fs.String("recoveryjson", "", "write the crash-recovery report (durable restart vs cold start) to this JSON path")
		exps         expList
	)
	fs.Var(&exps, "exp", "experiment id to run (repeatable); default all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "md" {
		return fmt.Errorf("unknown format %q (want text or md)", *format)
	}

	env, err := experiments.NewEnv(*scale)
	if err != nil {
		return err
	}
	ids := []string(exps)
	if len(ids) == 0 && *phaseJSON == "" && *streamJSON == "" && *streamGuard == 0 && *recoveryJSON == "" {
		ids = experiments.Order()
	}
	fmt.Fprintf(stdout, "NEAT reproduction harness — scale %.3g, %d experiment(s)\n\n", *scale, len(ids))
	for _, id := range ids {
		start := time.Now()
		tab, err := experiments.Run(env, id, *out)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if *format == "md" {
			if _, err := tab.WriteMarkdown(stdout); err != nil {
				return err
			}
		} else if _, err := tab.WriteTo(stdout); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "(%s completed in %s)\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *phaseJSON != "" {
		if err := writePhaseTimes(env, *phaseJSON, stdout); err != nil {
			return err
		}
	}
	if *streamJSON != "" || *streamGuard > 0 {
		if err := runStreamIngest(env, *streamJSON, *streamGuard, stdout); err != nil {
			return err
		}
	}
	if *recoveryJSON != "" {
		if err := runRecovery(env, *recoveryJSON, stdout); err != nil {
			return err
		}
	}
	return nil
}

// writePhaseTimes runs the fixed phase-timing scenario and writes the
// JSON report CI uploads as the BENCH_phase_times.json artifact.
func writePhaseTimes(env *experiments.Env, path string, stdout io.Writer) error {
	start := time.Now()
	rep, err := experiments.PhaseTimes(env)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "phase times (%d trajectories, %d segments) written to %s\n",
		rep.Trajectories, rep.Segments, path)
	fmt.Fprintf(os.Stderr, "(phase-times completed in %s)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runStreamIngest runs the fixed steady-state streaming scenario
// (cached vs uncached), optionally writes the JSON report CI uploads
// as BENCH_stream_ingest.json, and optionally enforces a minimum
// cached/uncached speedup — the CI bench-smoke guard against the
// distance cache silently regressing into a no-op.
func runStreamIngest(env *experiments.Env, path string, guard float64, stdout io.Writer) error {
	start := time.Now()
	rep, err := experiments.StreamIngest(env)
	if err != nil {
		return err
	}
	for _, m := range rep.Modes {
		fmt.Fprintf(stdout, "stream-ingest %-9s %8.2f ms/ingest  (%d SP queries, %d cache hits / %d misses)\n",
			m.Config, m.PerIngestMs, m.SPQueries, m.CacheHits, m.CacheMisses)
	}
	fmt.Fprintf(stdout, "stream-ingest speedup: %.2fx cached over uncached\n", rep.Speedup)
	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "stream-ingest report written to %s\n", path)
	}
	fmt.Fprintf(os.Stderr, "(stream-ingest completed in %s)\n", time.Since(start).Round(time.Millisecond))
	if guard > 0 && rep.Speedup < guard {
		return fmt.Errorf("stream-ingest speedup %.2fx below the %.2gx guard", rep.Speedup, guard)
	}
	return nil
}

// runRecovery runs the fixed crash-recovery scenario (durable restart
// vs best-case cold start across window sizes) and writes the JSON
// report CI uploads as BENCH_recovery.json.
func runRecovery(env *experiments.Env, path string, stdout io.Writer) error {
	start := time.Now()
	rep, err := experiments.Recovery(env)
	if err != nil {
		return err
	}
	for _, r := range rep.Rows {
		fmt.Fprintf(stdout, "recovery window=%d  cold %8.2f ms  recovered %8.2f ms  (open %.2f ms, %d records replayed, %.1fx)\n",
			r.Window, r.ColdMs, r.RecoveredMs, r.OpenMs, r.ReplayedRecords, r.Speedup)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recovery report written to %s\n", path)
	fmt.Fprintf(os.Stderr, "(recovery completed in %s)\n", time.Since(start).Round(time.Millisecond))
	return nil
}
