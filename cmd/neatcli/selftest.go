package main

import (
	"fmt"
	"os"

	"repro/internal/selftest"
)

// cmdSelftest runs the differential correctness suite: for each seed
// it generates a random road network, dataset, and configuration, runs
// both the optimized pipeline and the naive oracle, and demands
// byte-identical clusterings. Failures print a shrunken reproduction.
func cmdSelftest(args []string) error {
	fs := newFlagSet("selftest")
	n := fs.Int("n", 100, "number of consecutive seeds to check")
	seed := fs.Int64("seed", 0, "first seed")
	verbose := fs.Bool("v", false, "print one line per seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	failed := selftest.RunSuite(selftest.Options{
		N:       *n,
		Seed:    *seed,
		Out:     os.Stdout,
		Verbose: *verbose,
	})
	if len(failed) > 0 {
		return fmt.Errorf("selftest: %d seeds failed: %v", len(failed), failed)
	}
	return nil
}
