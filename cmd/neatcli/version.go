package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"repro/internal/obs"
)

// cmdVersion prints the binary's build description — the same data the
// server reports in GET /v1/stats.
func cmdVersion(args []string) error {
	fs := newFlagSet("version")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b := obs.BuildInfo()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			obs.Build
			OS   string `json:"os"`
			Arch string `json:"arch"`
		}{b, runtime.GOOS, runtime.GOARCH})
	}
	fmt.Println(b)
	fmt.Printf("%s/%s\n", runtime.GOOS, runtime.GOARCH)
	return nil
}
