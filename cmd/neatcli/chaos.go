package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/chaos"
)

// cmdChaos runs the fault-injection soak: seeded scenarios against
// the streaming clusterer and the HTTP service until the duration
// elapses, failing on the first violated robustness invariant.
func cmdChaos(args []string) error {
	fs := newFlagSet("chaos")
	dur := fs.Duration("duration", 30*time.Second, "how long to soak")
	seed := fs.Int64("seed", 1, "first scenario seed")
	quiet := fs.Bool("q", false, "suppress per-scenario lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var out io.Writer = os.Stdout
	if *quiet {
		out = nil
	}
	stats, err := chaos.Soak(*dur, *seed, out)
	fmt.Printf("chaos: %s\n", stats)
	if err != nil {
		return err
	}
	return nil
}
