package main

import (
	"fmt"
	"os"

	"repro/internal/mapmatch"
	"repro/internal/traj"
)

// cmdMatch map-matches raw GPS-like traces (trid,x,y,t CSV) onto a
// road network, producing the matched trajectory format the cluster
// subcommand consumes.
func cmdMatch(args []string) error {
	fs := newFlagSet("match")
	mapPath := fs.String("map", "", "road network file (required)")
	rawPath := fs.String("raw", "", "raw trace file: trid,x,y,t records (required)")
	noise := fs.Float64("noise", 10, "expected positioning noise stddev, meters")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mapPath == "" || *rawPath == "" {
		return fmt.Errorf("match: -map and -raw are required")
	}
	g, err := loadMap(*mapPath)
	if err != nil {
		return err
	}
	f, err := os.Open(*rawPath)
	if err != nil {
		return fmt.Errorf("open raw traces: %w", err)
	}
	raws, err := traj.ReadRaw(f)
	f.Close()
	if err != nil {
		return err
	}
	m, err := mapmatch.New(g, mapmatch.Config{NoiseStdDev: *noise})
	if err != nil {
		return err
	}
	ds, dropped := m.MatchAll(raws, *rawPath)
	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer of.Close()
		w = of
	}
	if err := traj.Write(w, ds); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "matched %d of %d traces (%d dropped)\n",
		len(ds.Trajectories), len(raws), dropped)
	return nil
}
