package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/neat"
)

// TestCLIWorkflow drives the whole toolchain through run(): generate a
// map, simulate traces (matched and raw), map-match, cluster, run the
// baseline, export GeoJSON, and print stats.
func TestCLIWorkflow(t *testing.T) {
	dir := t.TempDir()
	mapPath := filepath.Join(dir, "map.csv")
	tracesPath := filepath.Join(dir, "traces.csv")
	rawPath := filepath.Join(dir, "raw.csv")
	matchedPath := filepath.Join(dir, "matched.csv")
	svgPath := filepath.Join(dir, "out.svg")
	geojsonPath := filepath.Join(dir, "flows.geojson")

	steps := [][]string{
		{"genmap", "-region", "ATL", "-scale", "0.02", "-out", mapPath},
		{"gentraces", "-map", mapPath, "-objects", "25", "-out", tracesPath},
		{"gentraces", "-map", mapPath, "-objects", "8", "-noise", "6", "-out", rawPath},
		{"match", "-map", mapPath, "-raw", rawPath, "-noise", "6", "-out", matchedPath},
		{"cluster", "-map", mapPath, "-traces", tracesPath, "-eps", "800", "-mincard", "3", "-svg", svgPath, "-json", filepath.Join(dir, "res.json")},
		{"cluster", "-map", mapPath, "-traces", tracesPath, "-level", "flow", "-weights", "balanced"},
		{"traclus", "-traces", tracesPath, "-eps", "10", "-minlns", "2"},
		{"export", "-map", mapPath, "-traces", tracesPath, "-what", "flows", "-mincard", "2", "-out", geojsonPath},
		{"stats", "-map", mapPath},
		{"selftest", "-seed", "500", "-n", "3"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("neatcli %s: %v", strings.Join(args, " "), err)
		}
	}
	for _, p := range []string{mapPath, tracesPath, rawPath, matchedPath, svgPath, geojsonPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("missing artifact %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("artifact %s is empty", p)
		}
	}
	svg, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Error("svg artifact is not an SVG")
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		nil,            // no subcommand
		{"frobnicate"}, // unknown subcommand
		{"genmap", "-region", "XX"},
		{"gentraces"}, // missing -map
		{"cluster"},   // missing both files
		{"cluster", "-map", "nope.csv", "-traces", "nope.csv"},
		{"traclus"}, // missing traces
		{"stats"},   // missing map
		{"export"},  // missing map
		{"match"},   // missing both
		{"gentraces", "-map", "nope.csv", "-model", "warp"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("neatcli %v succeeded, want error", args)
		}
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help failed: %v", err)
	}
}

func TestParseHelpers(t *testing.T) {
	if l, err := parseLevel("base"); err != nil || l != neat.LevelBase {
		t.Errorf("parseLevel(base) = %v, %v", l, err)
	}
	if l, err := parseLevel("FLOW"); err != nil || l != neat.LevelFlow {
		t.Errorf("parseLevel(FLOW) = %v, %v", l, err)
	}
	if l, err := parseLevel("opt"); err != nil || l != neat.LevelOpt {
		t.Errorf("parseLevel(opt) = %v, %v", l, err)
	}
	if _, err := parseLevel("turbo"); err == nil {
		t.Error("parseLevel(turbo) accepted")
	}
	for name, want := range map[string]neat.Weights{
		"flow":       neat.WeightsFlowOnly,
		"density":    neat.WeightsDensityOnly,
		"speed":      neat.WeightsSpeedOnly,
		"balanced":   neat.WeightsBalanced,
		"monitoring": neat.WeightsTrafficMonitoring,
	} {
		got, err := parseWeights(name)
		if err != nil || got != want {
			t.Errorf("parseWeights(%s) = %v, %v", name, got, err)
		}
	}
	if _, err := parseWeights("everything"); err == nil {
		t.Error("parseWeights(everything) accepted")
	}
}
