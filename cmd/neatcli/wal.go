package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/persist"
)

// cmdWAL inspects a durability data directory (the -data-dir of
// neatserver, or a stream clusterer's Persist.Dir): every checkpoint
// and WAL segment is listed with its validation state. With -verify
// the command exits non-zero on any damage recovery could not absorb —
// a torn tail on the final segment is tolerated (recovery drops only
// that record) and reported as a warning instead.
func cmdWAL(args []string) error {
	fs := newFlagSet("wal")
	dir := fs.String("dir", "", "data directory to inspect (required)")
	verify := fs.Bool("verify", false, "exit non-zero on unrecoverable damage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("-dir is required")
	}
	rep, err := persist.Inspect(*dir)
	if err != nil {
		return err
	}

	var fatal, warn int
	fmt.Printf("%s: %d checkpoints, %d WAL segments\n", *dir, len(rep.Checkpoints), len(rep.Segments))
	validCkpt := false
	for _, ck := range rep.Checkpoints {
		if ck.Err != nil {
			fmt.Printf("  checkpoint %-28s INVALID: %v\n", filepath.Base(ck.Path), ck.Err)
			warn++
			continue
		}
		state := "ok"
		if !validCkpt {
			state = "ok (recovery starts here)"
			validCkpt = true
		}
		fmt.Printf("  checkpoint %-28s seq %-6d %8d bytes  %s\n", filepath.Base(ck.Path), ck.Seq, ck.Bytes, state)
	}
	if len(rep.Checkpoints) > 0 && !validCkpt {
		// Checkpoints exist but none decodes: recovery falls back to a
		// full WAL replay only if the log still starts at sequence 0.
		if len(rep.Segments) == 0 || rep.Segments[0].FirstSeq != 0 {
			fmt.Println("  ERROR: no valid checkpoint and the WAL does not start at seq 0")
			fatal++
		}
	}
	var records int
	for i, sg := range rep.Segments {
		last := i == len(rep.Segments)-1
		records += len(sg.Records)
		status := "ok"
		switch {
		case sg.Err != nil && !sg.Torn:
			status = fmt.Sprintf("ERROR: %v", sg.Err)
			fatal++
		case sg.Torn && !last:
			status = fmt.Sprintf("ERROR: torn mid-log (%d bytes): %v", sg.TornBytes, sg.Err)
			fatal++
		case sg.Torn:
			status = fmt.Sprintf("warning: torn tail (%d bytes, dropped on recovery)", sg.TornBytes)
			warn++
		}
		fmt.Printf("  segment    %-28s seq %-6d %8d bytes  %4d records  %s\n",
			filepath.Base(sg.Path), sg.FirstSeq, sg.Bytes, len(sg.Records), status)
	}
	fmt.Printf("  total: %d replayable records", records)
	if warn > 0 {
		fmt.Printf(", %d warnings", warn)
	}
	fmt.Println()
	if *verify {
		if fatal > 0 {
			return fmt.Errorf("verify: %d unrecoverable errors in %s", fatal, *dir)
		}
		fmt.Fprintln(os.Stderr, "wal: verify passed")
	}
	return nil
}
