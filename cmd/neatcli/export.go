package main

import (
	"fmt"
	"os"

	"repro/internal/neat"
	"repro/internal/viz"
)

// cmdExport writes GeoJSON for GIS tooling: the road network, a
// trajectory dataset, or a NEAT clustering result.
func cmdExport(args []string) error {
	fs := newFlagSet("export")
	mapPath := fs.String("map", "", "road network file (required)")
	tracesPath := fs.String("traces", "", "trajectory file (required for traces/flows/clusters)")
	what := fs.String("what", "network", "what to export: network, traces, flows, or clusters")
	eps := fs.Float64("eps", 6500, "Phase 3 ε for -what clusters")
	minCard := fs.Int("mincard", 5, "minCard for -what flows/clusters")
	workers := fs.Int("workers", 0, "parallel workers for Phase 3 (0 = serial, -1 = all CPUs)")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mapPath == "" {
		return fmt.Errorf("export: -map is required")
	}
	g, err := loadMap(*mapPath)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer f.Close()
		w = f
	}
	switch *what {
	case "network":
		return viz.WriteNetworkGeoJSON(w, g)
	case "traces", "flows", "clusters":
		if *tracesPath == "" {
			return fmt.Errorf("export: -traces is required for -what %s", *what)
		}
		ds, err := loadTraces(*tracesPath)
		if err != nil {
			return err
		}
		if *what == "traces" {
			return viz.WriteDatasetGeoJSON(w, ds)
		}
		cfg := neat.Config{
			Flow:   neat.FlowConfig{Weights: neat.WeightsFlowOnly, MinCard: *minCard},
			Refine: neat.RefineConfig{Epsilon: *eps, UseELB: true, Bounded: true, Workers: *workers},
		}
		level := neat.LevelFlow
		if *what == "clusters" {
			level = neat.LevelOpt
		}
		res, err := neat.NewPipeline(g).Run(ds, cfg, level)
		if err != nil {
			return err
		}
		if *what == "flows" {
			return viz.WriteFlowsGeoJSON(w, g, res.Flows)
		}
		return viz.WriteClustersGeoJSON(w, g, res.Clusters)
	default:
		return fmt.Errorf("export: unknown -what %q", *what)
	}
}
