package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/distcache"
	"repro/internal/mapgen"
	"repro/internal/mobisim"
	"repro/internal/neat"
	"repro/internal/roadnet"
	"repro/internal/traclus"
	"repro/internal/traj"
	"repro/internal/viz"
)

func loadMap(path string) (*roadnet.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open map: %w", err)
	}
	defer f.Close()
	g, err := roadnet.Read(f)
	if err != nil {
		return nil, fmt.Errorf("parse map %s: %w", path, err)
	}
	return g, nil
}

func loadTraces(path string) (traj.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return traj.Dataset{}, fmt.Errorf("open traces: %w", err)
	}
	defer f.Close()
	ds, err := traj.Read(f, path)
	if err != nil {
		return traj.Dataset{}, fmt.Errorf("parse traces %s: %w", path, err)
	}
	return ds, nil
}

func cmdGenMap(args []string) error {
	fs := newFlagSet("genmap")
	region := fs.String("region", "ATL", "preset region: ATL, SJ, or MIA")
	scale := fs.Float64("scale", 1.0, "map scale factor in (0, 1]")
	seed := fs.Int64("seed", 0, "override the preset seed (0 keeps it)")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, ok := mapgen.Presets()[strings.ToUpper(*region)]
	if !ok {
		return fmt.Errorf("unknown region %q (want ATL, SJ, or MIA)", *region)
	}
	if *scale < 1 {
		cfg = cfg.Scaled(*scale)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	g, err := mapgen.Generate(cfg)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := roadnet.Write(w, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s: %s\n", cfg.Name, roadnet.ComputeStats(g))
	return nil
}

func cmdGenTraces(args []string) error {
	fs := newFlagSet("gentraces")
	mapPath := fs.String("map", "", "road network file (required)")
	objects := fs.Int("objects", 500, "number of mobile objects")
	hotspots := fs.Int("hotspots", 2, "number of spawn hotspots")
	dests := fs.Int("destinations", 3, "number of destinations")
	period := fs.Float64("period", 5, "sampling period, seconds")
	seed := fs.Int64("seed", 1, "simulation seed")
	model := fs.String("model", "hotspot", "trip model: hotspot, uniform, or commute")
	noise := fs.Float64("noise", 0, "emit RAW traces (trid,x,y,t) with this GPS noise stddev instead of matched trajectories")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mapPath == "" {
		return fmt.Errorf("gentraces: -map is required")
	}
	g, err := loadMap(*mapPath)
	if err != nil {
		return err
	}
	cfg := mobisim.DefaultConfig("cli", *objects, *seed)
	cfg.NumHotspots = *hotspots
	cfg.NumDestinations = *dests
	cfg.SamplePeriod = *period
	var tripModel mobisim.TripModel
	switch strings.ToLower(*model) {
	case "hotspot":
		tripModel = mobisim.TripHotspot
	case "uniform":
		tripModel = mobisim.TripUniform
	case "commute":
		tripModel = mobisim.TripCommute
	default:
		return fmt.Errorf("gentraces: unknown trip model %q", *model)
	}
	ds, layout, err := mobisim.New(g).SimulateModel(cfg, tripModel)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer f.Close()
		w = f
	}
	if *noise > 0 {
		raws := mobisim.AddNoise(ds, *noise, *seed+100)
		if err := traj.WriteRaw(w, raws); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simulated %d RAW traces (%d points, noise stddev %.1f m)\n",
			len(raws), ds.TotalPoints(), *noise)
		return nil
	}
	if err := traj.Write(w, ds); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "simulated %d trajectories (%d points, model %s, %d hotspots, %d destinations)\n",
		len(ds.Trajectories), ds.TotalPoints(), tripModel, len(layout.Hotspots), len(layout.Destinations))
	return nil
}

func parseLevel(s string) (neat.Level, error) {
	switch strings.ToLower(s) {
	case "base":
		return neat.LevelBase, nil
	case "flow":
		return neat.LevelFlow, nil
	case "opt":
		return neat.LevelOpt, nil
	default:
		return 0, fmt.Errorf("unknown level %q (want base, flow, or opt)", s)
	}
}

func cmdCluster(args []string) error {
	fs := newFlagSet("cluster")
	mapPath := fs.String("map", "", "road network file (required)")
	tracesPath := fs.String("traces", "", "trajectory file (required)")
	level := fs.String("level", "opt", "clustering level: base, flow, or opt")
	eps := fs.Float64("eps", 6500, "Phase 3 network distance threshold, meters")
	minCard := fs.Int("mincard", 5, "minimum flow trajectory cardinality")
	weights := fs.String("weights", "flow", "merge weights: flow, density, speed, balanced, monitoring")
	beta := fs.Float64("beta", 0, "domination threshold (0 = +Inf)")
	workers := fs.Int("workers", 0, "parallel workers for Phases 1 and 3 (0 = serial, -1 = all CPUs)")
	shards := fs.Int("shards", 0, "road-network shards for Phases 1 and 2 (0 = unsharded; output is identical)")
	cacheEntries := fs.Int("cache-entries", -1, "distance cache entry budget for Phase 3 (0 = default budget, <0 = no cache; output is identical)")
	trace := fs.Bool("trace", false, "print the per-phase span breakdown after the run")
	svg := fs.String("svg", "", "write clustering visualization to this SVG file")
	jsonOut := fs.String("json", "", "write machine-readable results to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mapPath == "" || *tracesPath == "" {
		return fmt.Errorf("cluster: -map and -traces are required")
	}
	lvl, err := parseLevel(*level)
	if err != nil {
		return err
	}
	w, err := parseWeights(*weights)
	if err != nil {
		return err
	}
	g, err := loadMap(*mapPath)
	if err != nil {
		return err
	}
	ds, err := loadTraces(*tracesPath)
	if err != nil {
		return err
	}
	cfg := neat.Config{
		Flow:   neat.FlowConfig{Weights: w, MinCard: *minCard, Beta: *beta},
		Refine: neat.RefineConfig{Epsilon: *eps, UseELB: true, Bounded: true, Workers: *workers},
		Shards: *shards,
	}
	var cache *distcache.Cache
	if *cacheEntries >= 0 {
		cache = distcache.New(*cacheEntries)
		cfg.Refine.Cache = cache
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	p := neat.NewPipeline(g)
	p.EnableTracing(*trace)
	var res *neat.Result
	if *workers != 0 {
		res, err = p.RunParallel(ds, cfg, lvl, *workers)
	} else {
		res, err = p.Run(ds, cfg, lvl)
	}
	if err != nil {
		return err
	}
	printResult(g, res)
	if cache != nil {
		st := cache.CacheStats()
		fmt.Printf("  distance cache: %d/%d entries, %d hits / %d misses (%.1f%% hit rate)\n",
			st.Entries, st.Capacity, st.Hits, st.Misses, 100*st.HitRate())
	}
	if *trace {
		fmt.Println("trace:")
		res.Trace.WriteTree(os.Stdout)
	}
	if *svg != "" {
		if err := writeClusterSVG(g, ds, res, *svg); err != nil {
			return err
		}
		fmt.Printf("visualization written to %s\n", *svg)
	}
	if *jsonOut != "" {
		if err := writeClusterJSON(g, res, *jsonOut); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", *jsonOut)
	}
	return nil
}

// jsonFlow / jsonCluster / jsonResult are the CLI's machine-readable
// result schema (a file-shaped cousin of the server's API DTOs).
type jsonFlow struct {
	Route       []int32 `json:"route"`
	RouteLength float64 `json:"route_length_m"`
	Cardinality int     `json:"cardinality"`
	Density     int     `json:"density"`
}

type jsonCluster struct {
	Flows       []jsonFlow `json:"flows"`
	Cardinality int        `json:"cardinality"`
}

type jsonResult struct {
	Level        string        `json:"level"`
	Fragments    int           `json:"fragments"`
	BaseClusters int           `json:"base_clusters"`
	Flows        []jsonFlow    `json:"flows,omitempty"`
	Clusters     []jsonCluster `json:"clusters,omitempty"`
	TotalMs      float64       `json:"total_ms"`
}

func writeClusterJSON(g *roadnet.Graph, res *neat.Result, path string) error {
	toFlow := func(f *neat.FlowCluster) jsonFlow {
		jf := jsonFlow{
			RouteLength: f.RouteLength(g),
			Cardinality: f.Cardinality(),
			Density:     f.Density(),
		}
		for _, s := range f.Route {
			jf.Route = append(jf.Route, int32(s))
		}
		return jf
	}
	out := jsonResult{
		Level:        res.Level.String(),
		Fragments:    res.NumFragments,
		BaseClusters: len(res.BaseClusters),
		TotalMs:      float64(res.Timing.Total().Microseconds()) / 1000,
	}
	for _, f := range res.Flows {
		out.Flows = append(out.Flows, toFlow(f))
	}
	for _, c := range res.Clusters {
		jc := jsonCluster{Cardinality: c.Cardinality()}
		for _, f := range c.Flows {
			jc.Flows = append(jc.Flows, toFlow(f))
		}
		out.Clusters = append(out.Clusters, jc)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("encode results: %w", err)
	}
	return f.Close()
}

func parseWeights(s string) (neat.Weights, error) {
	switch strings.ToLower(s) {
	case "flow":
		return neat.WeightsFlowOnly, nil
	case "density":
		return neat.WeightsDensityOnly, nil
	case "speed":
		return neat.WeightsSpeedOnly, nil
	case "balanced":
		return neat.WeightsBalanced, nil
	case "monitoring":
		return neat.WeightsTrafficMonitoring, nil
	default:
		return neat.Weights{}, fmt.Errorf("unknown weights preset %q", s)
	}
}

func printResult(g *roadnet.Graph, res *neat.Result) {
	fmt.Printf("%s results\n", res.Level)
	if res.Shards > 0 {
		fmt.Printf("  sharded over %d road-network regions\n", res.Shards)
	}
	fmt.Printf("  phase 1: %d t-fragments -> %d base clusters in %s\n",
		res.NumFragments, len(res.BaseClusters), res.Timing.Phase1.Round(1e6))
	if len(res.BaseClusters) > 0 {
		dc := res.BaseClusters[0]
		fmt.Printf("  dense-core: segment %d with density %d (%d trajectories)\n",
			dc.Seg, dc.Density(), dc.Cardinality())
	}
	if res.Level >= neat.LevelFlow {
		fmt.Printf("  phase 2: %d flow clusters (%d filtered by minCard) in %s\n",
			len(res.Flows), res.FilteredFlows, res.Timing.Phase2.Round(1e6))
		for i, f := range res.Flows {
			if i >= 10 {
				fmt.Printf("  ... and %d more flows\n", len(res.Flows)-10)
				break
			}
			fmt.Printf("    flow %d: %d segments, %.0f m, %d trajectories\n",
				i, len(f.Route), f.RouteLength(g), f.Cardinality())
		}
	}
	if res.Level >= neat.LevelOpt {
		fmt.Printf("  phase 3: %d final clusters in %s (%d SP queries, %d pairs ELB-pruned)\n",
			len(res.Clusters), res.Timing.Phase3.Round(1e6),
			res.RefineStats.SPQueries, res.RefineStats.ELBPruned)
		if res.RefineStats.Workers > 0 {
			fmt.Printf("    %d workers, %d one-to-many expansions, %d pairs grid-pruned (graph %s, cluster %s)\n",
				res.RefineStats.Workers, res.RefineStats.Expansions, res.RefineStats.PrunedPairs,
				res.RefineStats.GraphTime.Round(1e6), res.RefineStats.ClusterTime.Round(1e6))
		}
	}
	fmt.Printf("  total: %s\n", res.Timing.Total().Round(1e6))
}

func writeClusterSVG(g *roadnet.Graph, ds traj.Dataset, res *neat.Result, path string) error {
	c := viz.NewCanvas(g, 1200)
	c.DrawNetwork()
	c.DrawDataset(ds)
	switch {
	case res.Clusters != nil:
		if err := c.DrawClusters(res.Clusters); err != nil {
			return err
		}
	case res.Flows != nil:
		if err := c.DrawFlows(res.Flows); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if _, err := c.WriteTo(f); err != nil {
		return err
	}
	return f.Close()
}

func cmdTraClus(args []string) error {
	fs := newFlagSet("traclus")
	mapPath := fs.String("map", "", "road network file (required for -svg)")
	tracesPath := fs.String("traces", "", "trajectory file (required)")
	eps := fs.Float64("eps", 10, "line-segment distance threshold")
	minLns := fs.Int("minlns", 5, "DBSCAN MinLns")
	svg := fs.String("svg", "", "write representative trajectories to this SVG file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracesPath == "" {
		return fmt.Errorf("traclus: -traces is required")
	}
	ds, err := loadTraces(*tracesPath)
	if err != nil {
		return err
	}
	res, err := traclus.Run(ds, traclus.Config{Epsilon: *eps, MinLns: *minLns})
	if err != nil {
		return err
	}
	fmt.Printf("TraClus results\n")
	fmt.Printf("  partition: %d line segments in %s\n", res.NumSegments, res.Timing.Partition.Round(1e6))
	fmt.Printf("  group: %d clusters, %d noise segments, %d discarded in %s (%d distance calls)\n",
		len(res.Clusters), res.NoiseSegments, res.DiscardedClusters,
		res.Timing.Group.Round(1e6), res.DistanceCalls)
	if *svg != "" {
		if *mapPath == "" {
			return fmt.Errorf("traclus: -map is required with -svg")
		}
		g, err := loadMap(*mapPath)
		if err != nil {
			return err
		}
		c := viz.NewCanvas(g, 1200)
		c.DrawNetwork()
		c.DrawTraClus(res.Clusters)
		f, err := os.Create(*svg)
		if err != nil {
			return fmt.Errorf("create %s: %w", *svg, err)
		}
		defer f.Close()
		if _, err := c.WriteTo(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("visualization written to %s\n", *svg)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := newFlagSet("stats")
	mapPath := fs.String("map", "", "road network file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mapPath == "" {
		return fmt.Errorf("stats: -map is required")
	}
	g, err := loadMap(*mapPath)
	if err != nil {
		return err
	}
	s := roadnet.ComputeStats(g)
	comps, largest := roadnet.ConnectedComponents(g)
	fmt.Printf("total length:    %.1f km\n", s.TotalLengthKm)
	fmt.Printf("segments:        %d (avg %.1f m)\n", s.NumSegments, s.AvgSegLenM)
	fmt.Printf("junctions:       %d (degree avg %.2f, max %d)\n", s.NumJunctions, s.AvgDegree, s.MaxDegree)
	fmt.Printf("components:      %d (largest %d junctions)\n", comps, largest)
	return nil
}
