// Command neatcli is the operational front end of the NEAT library:
// it generates synthetic road networks and mobility traces, runs the
// NEAT clustering pipeline (at any of its three levels) or the TraClus
// baseline, and renders SVG visualizations.
//
// Subcommands:
//
//	neatcli genmap    -region ATL -scale 0.1 -out map.csv
//	neatcli gentraces -map map.csv -objects 500 [-model commute] [-noise 8] -out traces.csv
//	neatcli match     -map map.csv -raw raw.csv -noise 8 -out matched.csv
//	neatcli cluster   -map map.csv -traces traces.csv -level opt -eps 2000 -mincard 5 [-svg out.svg]
//	neatcli traclus   -map map.csv -traces traces.csv -eps 10 -minlns 5 [-svg out.svg]
//	neatcli export    -map map.csv [-traces traces.csv] -what flows -out flows.geojson
//	neatcli stats     -map map.csv
//	neatcli sessions  -server http://localhost:8080 [-create beta -region SJ -scale 0.1 | -delete beta]
//	neatcli selftest  -seed 0 -n 200
//	neatcli chaos     -duration 30s -seed 1
//	neatcli wal       -dir /var/lib/neat [-verify]
//	neatcli version
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "neatcli:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "genmap":
		return cmdGenMap(args[1:])
	case "gentraces":
		return cmdGenTraces(args[1:])
	case "cluster":
		return cmdCluster(args[1:])
	case "traclus":
		return cmdTraClus(args[1:])
	case "stats":
		return cmdStats(args[1:])
	case "export":
		return cmdExport(args[1:])
	case "match":
		return cmdMatch(args[1:])
	case "sessions":
		return cmdSessions(args[1:])
	case "selftest":
		return cmdSelftest(args[1:])
	case "chaos":
		return cmdChaos(args[1:])
	case "wal":
		return cmdWAL(args[1:])
	case "version":
		return cmdVersion(args[1:])
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: neatcli <subcommand> [flags]

subcommands:
  genmap      generate a synthetic road network (ATL/SJ/MIA presets)
  gentraces   simulate mobility traces over a road network
  cluster     run NEAT (base/flow/opt) over traces
  traclus     run the TraClus baseline over traces
  stats       print Table I statistics of a road network
  export      write GeoJSON (network, traces, flows, or clusters)
  match       map-match raw GPS traces onto a road network
  sessions    list, create, or delete tenants on a running neatserver
  selftest    differential-test the pipeline against the naive oracle
  chaos       soak the engine and service under seeded fault injection
  wal         inspect or verify a durability data directory
  version     print build and toolchain information

run 'neatcli <subcommand> -h' for flags`)
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}
