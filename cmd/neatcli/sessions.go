package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/server"
)

// cmdSessions administers the tenants of a running neatserver over
// its /v1/sessions API: the default action lists them; -create
// provisions one from a mapgen region preset and -delete removes one.
// -limits shows a session's guard limits, and with any of the
// override flags (-qps, -burst, -points-per-sec, -point-burst,
// -max-concurrency, -min-concurrency) replaces them. Data commands
// target a tenant by appending ?session=<name> to the server routes
// (or via the client's Session method).
func cmdSessions(args []string) error {
	fs := newFlagSet("sessions")
	addr := fs.String("server", "http://localhost:8080", "base URL of the running neatserver")
	create := fs.String("create", "", "create a session with this name")
	region := fs.String("region", "ATL", "mapgen preset for -create: ATL, SJ, or MIA")
	scale := fs.Float64("scale", 0.1, "map scale for -create")
	del := fs.String("delete", "", "delete the session with this name")
	limits := fs.String("limits", "", "show this session's guard limits (set them with the override flags below)")
	qps := fs.Float64("qps", 0, "with -limits: ingest requests/sec (0 = unlimited)")
	burst := fs.Int("burst", 0, "with -limits: ingest burst (0 = derived from -qps)")
	pps := fs.Float64("points-per-sec", 0, "with -limits: trajectory points/sec (0 = unlimited)")
	ptBurst := fs.Int("point-burst", 0, "with -limits: point burst (0 = derived from -points-per-sec)")
	maxConc := fs.Int("max-concurrency", 0, "with -limits: adaptive-window ceiling (0 = server default)")
	minConc := fs.Int("min-concurrency", 0, "with -limits: adaptive-window floor (0 = 1)")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	actions := 0
	for _, set := range []bool{*create != "", *del != "", *limits != ""} {
		if set {
			actions++
		}
	}
	if actions > 1 {
		return fmt.Errorf("-create, -delete, and -limits are mutually exclusive")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := server.NewClient(*addr, nil)

	switch {
	case *create != "":
		dto, err := c.CreateSession(ctx, server.CreateSessionRequest{
			Name: *create, Region: *region, Scale: *scale,
		})
		if err != nil {
			return err
		}
		fmt.Printf("created session %q: %d junctions, %d segments (durable=%v)\n",
			dto.Name, dto.Junctions, dto.Segments, dto.Durable)
		return nil
	case *del != "":
		if err := c.DeleteSession(ctx, *del); err != nil {
			return err
		}
		fmt.Printf("deleted session %q\n", *del)
		return nil
	case *limits != "":
		setting := false
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "qps", "burst", "points-per-sec", "point-burst", "max-concurrency", "min-concurrency":
				setting = true
			}
		})
		var lim server.SessionLimitsDTO
		var err error
		if setting {
			lim, err = c.SetSessionLimits(ctx, server.SessionLimitsDTO{
				Session: *limits, IngestQPS: *qps, IngestBurst: *burst,
				PointsPerSec: *pps, PointBurst: *ptBurst,
				MaxConcurrency: *maxConc, MinConcurrency: *minConc,
			})
		} else {
			lim, err = c.SessionLimits(ctx, *limits)
		}
		if err != nil {
			return err
		}
		fmt.Printf("session %q limits: ingest %s req/s (burst %s), %s points/s (burst %s), concurrency %s\n",
			lim.Session, orUnlimited(lim.IngestQPS), orUnlimited(float64(lim.IngestBurst)),
			orUnlimited(lim.PointsPerSec), orUnlimited(float64(lim.PointBurst)), concRange(lim))
		return nil
	default:
		ls, err := c.Sessions(ctx)
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(w, "NAME\tJUNCTIONS\tSEGMENTS\tTRAJECTORIES\tFRAGMENTS\tBATCHES\tDURABLE\tRECOVERED\tDEGRADED\tQUARANTINED")
		for _, s := range ls.Sessions {
			quarantined := fmt.Sprintf("%v", s.Quarantined)
			if s.Quarantined && s.BreakerState != "" {
				quarantined = s.BreakerState
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%v\t%d\t%v\t%s\n",
				s.Name, s.Junctions, s.Segments, s.Trajectories, s.TotalFragments,
				s.Batches, s.Durable, s.RecoveredBatches, s.Degraded, quarantined)
		}
		return w.Flush()
	}
}

// orUnlimited renders a zero limit as the word it means.
func orUnlimited(v float64) string {
	if v <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%g", v)
}

// concRange renders the adaptive-concurrency bounds.
func concRange(lim server.SessionLimitsDTO) string {
	if lim.MaxConcurrency <= 0 {
		return "server default"
	}
	min := lim.MinConcurrency
	if min <= 0 {
		min = 1
	}
	return fmt.Sprintf("%d..%d (adaptive)", min, lim.MaxConcurrency)
}
