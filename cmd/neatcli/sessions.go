package main

import (
	"context"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/server"
)

// cmdSessions administers the tenants of a running neatserver over
// its /v1/sessions API: the default action lists them; -create
// provisions one from a mapgen region preset and -delete removes one.
// Data commands target a tenant by appending ?session=<name> to the
// server routes (or via the client's Session method).
func cmdSessions(args []string) error {
	fs := newFlagSet("sessions")
	addr := fs.String("server", "http://localhost:8080", "base URL of the running neatserver")
	create := fs.String("create", "", "create a session with this name")
	region := fs.String("region", "ATL", "mapgen preset for -create: ATL, SJ, or MIA")
	scale := fs.Float64("scale", 0.1, "map scale for -create")
	del := fs.String("delete", "", "delete the session with this name")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *create != "" && *del != "" {
		return fmt.Errorf("-create and -delete are mutually exclusive")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := server.NewClient(*addr, nil)

	switch {
	case *create != "":
		dto, err := c.CreateSession(ctx, server.CreateSessionRequest{
			Name: *create, Region: *region, Scale: *scale,
		})
		if err != nil {
			return err
		}
		fmt.Printf("created session %q: %d junctions, %d segments (durable=%v)\n",
			dto.Name, dto.Junctions, dto.Segments, dto.Durable)
		return nil
	case *del != "":
		if err := c.DeleteSession(ctx, *del); err != nil {
			return err
		}
		fmt.Printf("deleted session %q\n", *del)
		return nil
	default:
		ls, err := c.Sessions(ctx)
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(w, "NAME\tJUNCTIONS\tSEGMENTS\tTRAJECTORIES\tFRAGMENTS\tBATCHES\tDURABLE\tRECOVERED\tDEGRADED")
		for _, s := range ls.Sessions {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%v\t%d\t%v\n",
				s.Name, s.Junctions, s.Segments, s.Trajectories, s.TotalFragments,
				s.Batches, s.Durable, s.RecoveredBatches, s.Degraded)
		}
		return w.Flush()
	}
}
