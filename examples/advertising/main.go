// Location-based advertising: the paper's second motivating scenario —
// "it would be beneficial for local stores to place advertisements ...
// to mobile devices taking path in major traffic flows passing by
// their stores."
//
// The example places a handful of stores on a scaled West-San-Jose
// network, clusters the simulated traffic with NEAT, and for each
// store reports which major flows pass within walking distance, how
// many distinct mobile objects those flows carry, and at which hours
// the flow's objects pass closest — the inputs an ad-targeting engine
// needs.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/hotspot"
	"repro/internal/mapgen"
	"repro/internal/mobisim"
	"repro/internal/neat"
	"repro/internal/spatial"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := mapgen.Generate(mapgen.WestSanJose().Scaled(0.05))
	if err != nil {
		return err
	}
	ds, _, err := mobisim.New(g).Simulate(mobisim.DefaultConfig("shoppers", 250, 7))
	if err != nil {
		return err
	}
	res, err := core.NewPipeline(g).Run(ds, core.Config{
		Flow: core.FlowConfig{Weights: neat.WeightsFlowOnly, MinCard: 8},
	}, core.LevelFlow)
	if err != nil {
		return err
	}
	fmt.Printf("%d trips clustered into %d major flows in %s\n\n",
		len(ds.Trajectories), len(res.Flows), res.Timing.Total().Round(1e6))

	// Stores: pick junction positions spread across the map and nudge
	// them off-network, as storefronts are.
	grid, err := spatial.NewGrid(g, 150)
	if err != nil {
		return err
	}
	bounds := g.Bounds()
	stores := []struct {
		name string
		pos  geo.Point
	}{
		{"Cafe Aroma", bounds.Center().Add(geo.Pt(40, 25))},
		{"BookNook", bounds.Min.Add(geo.Pt(bounds.Width()*0.3, bounds.Height()*0.7))},
		{"GadgetHub", bounds.Min.Add(geo.Pt(bounds.Width()*0.75, bounds.Height()*0.25))},
	}
	const walkRadius = 250.0 // meters a pedestrian detours for an offer

	for _, store := range stores {
		// Snap the storefront to its street.
		loc, snapDist, ok := grid.Nearest(store.pos)
		if !ok {
			return fmt.Errorf("store %s is off the map", store.name)
		}
		fmt.Printf("%s (storefront %.0f m from segment %d):\n", store.name, snapDist, loc.Seg)

		matched := 0
		for i, f := range res.Flows {
			// A flow passes the store when any junction of its route is
			// within the walking radius of the storefront.
			geom, err := f.Route.Geometry(g)
			if err != nil {
				return err
			}
			closest := math.Inf(1)
			for _, p := range geom {
				if d := p.Dist(store.pos); d < closest {
					closest = d
				}
			}
			if closest > walkRadius {
				continue
			}
			matched++
			fmt.Printf("  flow %d passes at %.0f m: %d potential customers over %.1f km of route\n",
				i, closest, f.Cardinality(), f.RouteLength(g)/1000)
		}
		if matched == 0 {
			fmt.Printf("  no major flow within %.0f m — poor ad placement\n", walkRadius)
		}
		fmt.Println()
	}

	// Where should a NEW store advertise from? Detect the dataset's
	// hotspots (dense trip-endpoint areas) and rank them.
	spots, err := hotspot.Detect(ds, hotspot.Config{
		CellSize: 250,
		TopK:     3,
		Source:   hotspot.TripEndpoints,
	})
	if err != nil {
		return err
	}
	fmt.Println("best zones for a new campaign (trip-endpoint hotspots):")
	for i, h := range spots {
		fmt.Printf("  zone %d at (%.0f, %.0f): %.0f%% of trip endpoints\n",
			i+1, h.Center.X, h.Center.Y, 100*h.Share)
	}
	return nil
}
