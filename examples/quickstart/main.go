// Quickstart: the smallest end-to-end NEAT run. It hand-builds the
// star road network of the paper's Figure 1(b), feeds in five short
// trajectories, and walks through the concepts of §II-B: t-fragments,
// base clusters, density, netflow, and flow clusters — printing the
// same numbers the paper derives in its worked example.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/neat"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Road network of Fig 1(b): four segments meeting at junction n2.
	var b roadnet.Builder
	n1 := b.AddJunction(geo.Pt(0, 0))
	n2 := b.AddJunction(geo.Pt(100, 0))
	n3 := b.AddJunction(geo.Pt(200, 0))
	n4 := b.AddJunction(geo.Pt(100, 100))
	n5 := b.AddJunction(geo.Pt(100, -100))
	s1, _ := b.AddSegment(n1, n2, roadnet.SegmentOpts{})
	s2, _ := b.AddSegment(n2, n3, roadnet.SegmentOpts{})
	s3, _ := b.AddSegment(n2, n4, roadnet.SegmentOpts{})
	s4, _ := b.AddSegment(n2, n5, roadnet.SegmentOpts{})
	g, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Println("road network:", roadnet.ComputeStats(g))

	// Five trips over the network. Each is a time-ordered sequence of
	// road-network locations (sid, x, y, t); the pipeline splits them
	// at junctions into t-fragments.
	mk := func(id traj.ID, route ...roadnet.SegID) core.Trajectory {
		tr := core.Trajectory{ID: id}
		t := 0.0
		for _, s := range route {
			gs := g.SegmentGeometry(s)
			tr.Points = append(tr.Points,
				traj.Sample(s, gs.Midpoint(), t),
				traj.Sample(s, gs.PointAt(0.9), t+5))
			t += 10
		}
		return tr
	}
	ds := core.Dataset{
		Name: "fig1",
		Trajectories: []core.Trajectory{
			mk(1, s1, s2), // T1: along the main road
			mk(2, s1, s2), // T2: same
			mk(3, s1, s3), // T3: turns north
			mk(4, s2),     // T4: only the eastern segment
			mk(5, s1, s4), // T5: turns south
		},
	}

	pipeline := core.NewPipeline(g)
	cfg := core.Config{
		Flow:   core.FlowConfig{Weights: neat.WeightsFlowOnly},
		Refine: core.RefineConfig{Epsilon: 400, UseELB: true, Bounded: true},
	}
	res, err := pipeline.Run(ds, cfg, core.LevelOpt)
	if err != nil {
		return err
	}

	fmt.Printf("\nPhase 1 — %d t-fragments grouped into %d base clusters:\n",
		res.NumFragments, len(res.BaseClusters))
	for _, bc := range res.BaseClusters {
		fmt.Printf("  segment %d: density %d, trajectory cardinality %d\n",
			bc.Seg, bc.Density(), bc.Cardinality())
	}
	fmt.Printf("  dense-core is segment %d\n", res.BaseClusters[0].Seg)

	fmt.Printf("\nPhase 2 — %d flow clusters:\n", len(res.Flows))
	for i, f := range res.Flows {
		fmt.Printf("  flow %d: route %v, length %.0f m, %d trajectories\n",
			i, f.Route, f.RouteLength(g), f.Cardinality())
	}

	fmt.Printf("\nPhase 3 — %d final trajectory clusters (eps=%.0f m):\n",
		len(res.Clusters), cfg.Refine.Epsilon)
	for i, c := range res.Clusters {
		fmt.Printf("  cluster %d: %d flows, %d trajectories\n",
			i, len(c.Flows), c.Cardinality())
	}
	return nil
}
