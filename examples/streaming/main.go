// Incremental clustering: §III-C motivates the density-based
// refinement with online use — "the first two phases of NEAT can be
// performed on each newly arrived set of trajectories. The new flow
// clusters are then merged with the available flow clusters to produce
// compact clustering results."
//
// The example simulates a trajectory stream arriving in batches and
// feeds it to stream.Clusterer: per batch, Phases 1-2 run only on the
// new data, flows older than the sliding window age out, and the cheap
// Phase 3 merge serves the current clustering — the expensive phases
// never reprocess old data.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/mapgen"
	"repro/internal/mobisim"
	"repro/internal/neat"
	"repro/internal/stream"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := mapgen.Generate(mapgen.NorthWestAtlanta().Scaled(0.05))
	if err != nil {
		return err
	}
	ds, _, err := mobisim.New(g).Simulate(mobisim.DefaultConfig("stream", 240, 99))
	if err != nil {
		return err
	}
	clusterer, err := stream.New(g, stream.Config{
		Neat: core.Config{
			Flow:   core.FlowConfig{Weights: neat.WeightsFlowOnly, MinCard: 4},
			Refine: core.RefineConfig{Epsilon: 1500, UseELB: true, Bounded: true},
		},
		Window: 4, // keep the last 4 batches of traffic
	})
	if err != nil {
		return err
	}

	const batches = 8
	per := len(ds.Trajectories) / batches
	fmt.Printf("streaming %d trajectories in %d batches of ~%d (window: 4 batches)\n\n",
		len(ds.Trajectories), batches, per)
	for b := 0; b < batches; b++ {
		lo, hi := b*per, (b+1)*per
		if b == batches-1 {
			hi = len(ds.Trajectories)
		}
		batch := core.Dataset{
			Name:         fmt.Sprintf("batch-%d", b),
			Trajectories: ds.Trajectories[lo:hi],
		}
		start := time.Now()
		snap, err := clusterer.Ingest(batch)
		if err != nil {
			return err
		}
		fmt.Printf("batch %d: +%d flows, -%d evicted | standing %d flows in %d clusters "+
			"(%s, %d SP queries, %d pairs ELB-pruned)\n",
			snap.Batch, snap.NewFlows, snap.EvictedFlows, snap.StandingFlows,
			len(snap.Clusters), time.Since(start).Round(time.Millisecond),
			snap.RefineStats.SPQueries, snap.RefineStats.ELBPruned)
	}

	// Compare against a one-shot run over everything (unbounded memory).
	oneShot, err := core.NewPipeline(g).Run(ds, core.Config{
		Flow:   core.FlowConfig{Weights: neat.WeightsFlowOnly, MinCard: 4},
		Refine: core.RefineConfig{Epsilon: 1500, UseELB: true, Bounded: true},
	}, core.LevelOpt)
	if err != nil {
		return err
	}
	fmt.Printf("\none-shot over all %d trips: %d flows in %d clusters\n",
		len(ds.Trajectories), len(oneShot.Flows), len(oneShot.Clusters))
	fmt.Println("(the windowed stream sees only recent traffic, and netflows across batch boundaries are invisible to per-batch Phase 2 — the trade for bounded memory and bounded per-batch work)")
	return nil
}
