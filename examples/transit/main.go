// Transit planning: the paper's first motivating scenario — "knowing
// which routes in a road network with highly dense and continuous
// traffic helps optimize rail/bus line and terminal arrangement."
//
// The example simulates commuter traffic on a scaled North-West-Atlanta
// network, clusters it with NEAT, and turns the strongest flow clusters
// into bus-line proposals: route, length, expected ridership (trajectory
// cardinality), and terminal junctions. It also derives stop positions
// every ~400 m along each proposed route.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/mapgen"
	"repro/internal/mobisim"
	"repro/internal/neat"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := mapgen.Generate(mapgen.NorthWestAtlanta().Scaled(0.05))
	if err != nil {
		return err
	}
	sim := mobisim.New(g)
	cfg := mobisim.DefaultConfig("commute", 300, 42)
	cfg.NumHotspots = 3 // three residential areas
	cfg.NumDestinations = 2
	ds, layout, err := sim.Simulate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d commuter trips (%d location samples)\n",
		len(ds.Trajectories), ds.TotalPoints())

	res, err := core.NewPipeline(g).Run(ds, core.Config{
		Flow:   core.FlowConfig{Weights: neat.WeightsTrafficMonitoring, MinCard: 10},
		Refine: core.RefineConfig{Epsilon: 1200, UseELB: true, Bounded: true},
	}, core.LevelFlow)
	if err != nil {
		return err
	}
	fmt.Printf("NEAT found %d candidate corridors (minCard=10) in %s\n\n",
		len(res.Flows), res.Timing.Total().Round(1e6))

	// Rank corridors by passenger-kilometers: riders x route length.
	type proposal struct {
		flow   *core.FlowCluster
		riders int
		length float64
	}
	var proposals []proposal
	for _, f := range res.Flows {
		proposals = append(proposals, proposal{
			flow:   f,
			riders: f.Cardinality(),
			length: f.RouteLength(g),
		})
	}
	sort.Slice(proposals, func(i, j int) bool {
		return float64(proposals[i].riders)*proposals[i].length >
			float64(proposals[j].riders)*proposals[j].length
	})

	const stopSpacing = 400.0
	limit := 5
	if len(proposals) < limit {
		limit = len(proposals)
	}
	fmt.Printf("top %d bus line proposals (of %d corridors):\n", limit, len(proposals))
	for i, p := range proposals[:limit] {
		start, end, err := p.flow.Route.Endpoints(g)
		if err != nil {
			return err
		}
		geom, err := p.flow.Route.Geometry(g)
		if err != nil {
			return err
		}
		stops := int(p.length/stopSpacing) + 2 // terminals included
		fmt.Printf("  line %d: %d segments, %.1f km, terminals j%d <-> j%d\n",
			i+1, len(p.flow.Route), p.length/1000, start, end)
		fmt.Printf("          expected riders: %d of %d trips (%.0f%%), ~%d stops\n",
			p.riders, len(ds.Trajectories),
			100*float64(p.riders)/float64(len(ds.Trajectories)), stops)
		// First few stop positions along the corridor.
		fmt.Printf("          stops at: ")
		for s := 0; s < stops && s < 4; s++ {
			pt := geom.PointAtArc(float64(s) * stopSpacing)
			fmt.Printf("(%.0f,%.0f) ", pt.X, pt.Y)
		}
		fmt.Println("...")
	}
	fmt.Printf("\nhotspots: %v  destinations: %v\n", layout.Hotspots, layout.Destinations)
	return nil
}
