// Server demo: the 3-tier architecture of §II-C in one process. It
// starts a NEAT server over a scaled map, plays several mobile-device
// clients that upload their trajectories concurrently, and then
// queries the clustering results — exactly the
// record -> send -> request loop the paper describes.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/mapgen"
	"repro/internal/mobisim"
	"repro/internal/server"
	"repro/internal/traj"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := mapgen.Generate(mapgen.NorthWestAtlanta().Scaled(0.05))
	if err != nil {
		return err
	}
	// In-process HTTP server; cmd/neatserver runs the same handler
	// standalone.
	srv := httptest.NewServer(server.New(g, server.Config{DataNodes: 4}).Handler())
	defer srv.Close()
	fmt.Println("NEAT server up at", srv.URL)

	ds, _, err := mobisim.New(g).Simulate(mobisim.DefaultConfig("devices", 120, 5))
	if err != nil {
		return err
	}

	// Each client device uploads its own trajectory.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := server.NewClient(srv.URL, srv.Client())
	var wg sync.WaitGroup
	errs := make(chan error, len(ds.Trajectories))
	for _, tr := range ds.Trajectories {
		wg.Add(1)
		go func(tr traj.Trajectory) {
			defer wg.Done()
			one := traj.Dataset{Trajectories: []traj.Trajectory{tr}}
			if _, err := client.Ingest(ctx, one); err != nil {
				errs <- fmt.Errorf("device %d: %w", tr.ID, err)
			}
		}(tr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("server state: %d trajectories, %d t-fragments, %d data nodes\n",
		stats.Trajectories, stats.TotalFragments, stats.DataNodes)

	res, err := client.Clusters(ctx, server.ClusterQuery{
		Level:   "opt",
		Epsilon: 1500,
		MinCard: 5,
	})
	if err != nil {
		return err
	}
	fmt.Printf("clustering (%s, server-side %.1f ms): %d base clusters -> %d flows -> %d clusters\n",
		res.Level, res.ElapsedMs, res.BaseClusters, len(res.Flows), len(res.Clusters))
	for i, c := range res.Clusters {
		fmt.Printf("  cluster %d: %d flows, %d distinct objects\n", i, len(c.Flows), c.Cardinality)
	}
	return nil
}
